// Reproducibility tests: every stochastic component is seed-deterministic,
// so whole pipelines must reproduce bit-for-bit given the same seeds — and
// for a fixed GEMM kernel, bit-for-bit across thread counts too.

#include <cstring>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/diffusion.h"
#include "core/unet.h"
#include "eval/dataset.h"
#include "sim/city.h"
#include "sim/trips.h"
#include "tensor/gemm_kernel.h"
#include "tensor/nn.h"
#include "tensor/ops.h"
#include "tensor/storage.h"
#include "util/thread_pool.h"

namespace dot {
namespace {

TEST(Determinism, DatasetBuildsIdentically) {
  CityConfig cc = CityConfig::ChengduLike();
  cc.grid_nodes = 8;
  cc.spacing_meters = 1300;
  City city_a(cc, 5), city_b(cc, 5);
  TripConfig tc = TripConfig::ChengduLike();
  tc.num_trips = 120;
  BenchmarkDataset a = BuildDataset(city_a, tc, 77, "a");
  BenchmarkDataset b = BuildDataset(city_b, tc, 77, "b");
  ASSERT_EQ(a.split.train.size(), b.split.train.size());
  ASSERT_EQ(a.split.test.size(), b.split.test.size());
  for (size_t i = 0; i < a.split.train.size(); ++i) {
    EXPECT_EQ(a.split.train[i].odt.departure_time,
              b.split.train[i].odt.departure_time);
    EXPECT_DOUBLE_EQ(a.split.train[i].travel_time_minutes,
                     b.split.train[i].travel_time_minutes);
    EXPECT_EQ(a.split.train[i].odt.origin, b.split.train[i].odt.origin);
  }
}

TEST(Determinism, DifferentSeedsDifferentTrips) {
  CityConfig cc = CityConfig::ChengduLike();
  cc.grid_nodes = 8;
  cc.spacing_meters = 1300;
  City city(cc, 5);
  TripConfig tc = TripConfig::ChengduLike();
  tc.num_trips = 60;
  TripGenerator g1(&city, 1), g2(&city, 2);
  auto t1 = g1.Generate(tc);
  auto t2 = g2.Generate(tc);
  int64_t same = 0;
  for (size_t i = 0; i < t1.size(); ++i) {
    if (t1[i].odt.departure_time == t2[i].odt.departure_time) ++same;
  }
  EXPECT_LT(same, static_cast<int64_t>(t1.size()) / 4);
}

TEST(Determinism, UnetForwardIsSeedDeterministic) {
  UnetConfig cfg;
  cfg.base_channels = 8;
  cfg.levels = 2;
  cfg.cond_dim = 16;
  cfg.max_steps = 50;
  Rng rng_a(9), rng_b(9);
  UnetDenoiser a(cfg, &rng_a);
  UnetDenoiser b(cfg, &rng_b);
  Rng in_rng(10);
  Tensor x = Tensor::Randn({1, 3, 8, 8}, &in_rng);
  Tensor cond = Tensor::Zeros({1, 5});
  NoGradGuard guard;
  Tensor ya = a.PredictNoise(x, {3}, cond);
  Tensor yb = b.PredictNoise(x, {3}, cond);
  for (int64_t i = 0; i < ya.numel(); ++i) EXPECT_EQ(ya.at(i), yb.at(i));
}

// ---- GEMM kernel x precision x thread-count sweep ---------------------------
// The engine contract (gemm_kernel.h): same kernel + same inputs -> bitwise
// identical outputs for ANY thread count, because work is only partitioned
// across disjoint output regions and the k-accumulation order is fixed. The
// int8 path inherits the same contract for free — integer accumulation has
// no rounding at all — so the sweep runs the full kernel x precision grid.
// Verified end to end here: conv2d forward + backward, masked attention, and
// the UNet denoiser (the oracle's stage-2 network) at 1, 4, and
// hardware-concurrency threads, plus run-to-run identity at each count.
// Under kInt8 the recording conv forward + backward stay fp32 by the
// grad-mode contract; the inference blocks take the quantized path.

class KernelThreadSweep
    : public ::testing::TestWithParam<std::tuple<gemm::Kernel, gemm::Precision>> {
 protected:
  void SetUp() override {
    if (std::get<0>(GetParam()) == gemm::Kernel::kSimd &&
        !gemm::SimdAvailable()) {
      GTEST_SKIP() << "SIMD microkernel unavailable on this CPU/build";
    }
    prev_kernel_ = gemm::ActiveKernel();
    prev_precision_ = gemm::ActivePrecision();
    gemm::SetKernel(std::get<0>(GetParam()));
    gemm::SetPrecision(std::get<1>(GetParam()));
  }
  void TearDown() override {
    gemm::SetKernel(prev_kernel_);
    gemm::SetPrecision(prev_precision_);
    ThreadPool::ResetGlobalForTesting();  // back to default sizing
  }

  gemm::Kernel prev_kernel_ = gemm::Kernel::kNaive;
  gemm::Precision prev_precision_ = gemm::Precision::kFp32;

  /// One fixed-seed pass through the GEMM-heavy paths; returns every output
  /// and gradient byte so the comparison below is exhaustive.
  static std::vector<float> RunWorkload() {
    std::vector<float> out;
    auto append = [&out](const std::vector<float>& v) {
      out.insert(out.end(), v.begin(), v.end());
    };
    // conv2d forward + backward (im2col GEMM, col2im GemmTA, dW GemmTB).
    {
      Rng rng(123);
      Tensor x = Tensor::Randn({2, 3, 16, 16}, &rng).set_requires_grad(true);
      Tensor w = Tensor::Randn({4, 3, 3, 3}, &rng).set_requires_grad(true);
      Tensor loss = Mean(Square(Conv2d(x, w, Tensor(), 1, 1)));
      loss.Backward();
      append({loss.item()});
      append(x.grad_vec());
      append(w.grad_vec());
    }
    NoGradGuard guard;
    // conv2d inference forward: under kInt8 this is the quantized conv path,
    // with the weight handle engaging the quantized-weight cache (the 9x9
    // input gives OHW=81, a non-multiple-of-8 edge-tile GEMM).
    {
      Rng rng(55);
      Tensor cx = Tensor::Randn({2, 3, 9, 9}, &rng);
      Tensor cw = Tensor::Randn({4, 3, 3, 3}, &rng).set_requires_grad(true);
      append(Conv2d(cx, cw, Tensor(), 1, 1).ToVector());
    }
    // Masked multi-head attention (BatchMatMul paths).
    {
      Rng rng(7);
      nn::MultiheadAttention att(16, 2, &rng);
      Tensor ax = Tensor::Randn({2, 6, 16}, &rng);
      std::vector<float> key_bias = {0, 0, 0, 0, -1e9f, -1e9f};
      append(att.Forward(ax, &key_bias).ToVector());
    }
    // UNet denoiser forward — the oracle's stage-2 network.
    {
      UnetConfig cfg;
      cfg.base_channels = 8;
      cfg.levels = 2;
      cfg.cond_dim = 16;
      cfg.max_steps = 50;
      Rng rng(9);
      UnetDenoiser unet(cfg, &rng);
      Rng in_rng(10);
      Tensor ux = Tensor::Randn({1, 3, 8, 8}, &in_rng);
      append(unet.PredictNoise(ux, {3}, Tensor::Zeros({1, 5})).ToVector());
    }
    return out;
  }
};

// Reverse-diffusion sampling must be bitwise identical with the storage
// pool on and off, for every kernel and across thread counts: recycling
// changes only where buffers live, never what is computed (and the
// AddReuse/ScaleReuse in-place paths must match their functional
// counterparts exactly).
TEST_P(KernelThreadSweep, SamplingBitwiseIdenticalPoolOnOff) {
  auto run_sampling = [] {
    UnetConfig cfg;
    cfg.base_channels = 8;
    cfg.levels = 2;
    cfg.cond_dim = 16;
    cfg.max_steps = 6;
    Rng rng(21);
    UnetDenoiser unet(cfg, &rng);
    Diffusion diff{DiffusionSchedule(6)};
    Rng sample_rng(22);
    return diff.Sample(unet, Tensor::Zeros({2, 5}), {2, 3, 8, 8}, &sample_rng)
        .ToVector();
  };
  const bool prev_pool = storage::PoolEnabled();
  for (int threads : {1, 4}) {
    ThreadPool::ResetGlobalForTesting(threads);
    storage::SetPoolEnabled(true);
    std::vector<float> pooled = run_sampling();
    storage::SetPoolEnabled(false);
    std::vector<float> unpooled = run_sampling();
    storage::SetPoolEnabled(prev_pool);
    ASSERT_EQ(pooled.size(), unpooled.size());
    EXPECT_EQ(0, std::memcmp(pooled.data(), unpooled.data(),
                             pooled.size() * sizeof(float)))
        << "pool on/off sampling differs at " << threads << " threads";
  }
}

TEST_P(KernelThreadSweep, BitwiseIdenticalAcrossThreadCounts) {
  const int hw = static_cast<int>(
      std::max(1u, std::thread::hardware_concurrency()));
  ThreadPool::ResetGlobalForTesting(1);
  const std::vector<float> baseline = RunWorkload();
  ASSERT_FALSE(baseline.empty());
  for (int threads : {1, 4, hw}) {
    ThreadPool::ResetGlobalForTesting(threads);
    std::vector<float> run1 = RunWorkload();
    std::vector<float> run2 = RunWorkload();  // run-to-run identity
    ASSERT_EQ(run1.size(), baseline.size());
    EXPECT_EQ(0, std::memcmp(run1.data(), baseline.data(),
                             baseline.size() * sizeof(float)))
        << "thread count " << threads << " diverges from single-thread";
    EXPECT_EQ(0, std::memcmp(run1.data(), run2.data(),
                             run1.size() * sizeof(float)))
        << "repeated run at " << threads << " threads not identical";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAndPrecisions, KernelThreadSweep,
    ::testing::Combine(::testing::Values(gemm::Kernel::kNaive,
                                         gemm::Kernel::kBlocked,
                                         gemm::Kernel::kSimd),
                       ::testing::Values(gemm::Precision::kFp32,
                                         gemm::Precision::kInt8)),
    [](const auto& info) {
      return std::string(gemm::KernelName(std::get<0>(info.param))) + "_" +
             gemm::PrecisionName(std::get<1>(info.param));
    });

// Batch-position invariance of the quantized path: activation scales are
// per-op(A)-row / per-op(B)-column — never per packed panel — so quantizing
// a row depends only on that row's contents, not on which rows it happens to
// share a panel with. Slicing a row block out of a bigger batch must
// therefore reproduce the batched results bitwise, even when the slice
// starts mid-panel and the shapes force partial edge tiles (m % 8 != 0,
// n % 8 != 0).
TEST(Int8Determinism, BatchPositionInvarianceOnEdgeTiles) {
  const int64_t m = 11, k = 40, n = 9;
  Rng rng(20260807);
  std::vector<float> a(static_cast<size_t>(m * k));
  std::vector<float> b(static_cast<size_t>(k * n));
  for (auto& v : a) v = static_cast<float>(rng.Uniform(-2.0, 2.0));
  for (auto& v : b) v = static_cast<float>(rng.Uniform(-2.0, 2.0));
  for (gemm::Kernel kernel :
       {gemm::Kernel::kNaive, gemm::Kernel::kBlocked, gemm::Kernel::kSimd}) {
    if (kernel == gemm::Kernel::kSimd && !gemm::SimdAvailable()) continue;
    SCOPED_TRACE(gemm::KernelName(kernel));
    std::vector<float> c_full(static_cast<size_t>(m * n));
    gemm::RunEx(kernel, gemm::Precision::kInt8, gemm::Layout::kNN, a.data(),
                b.data(), c_full.data(), m, k, n, false);
    // Rows 3..7 of the batch, recomputed standalone: starts mid-panel in the
    // batched run, is its own (padded) panel standalone.
    const int64_t row0 = 3, rows = 5;
    std::vector<float> c_part(static_cast<size_t>(rows * n));
    gemm::RunEx(kernel, gemm::Precision::kInt8, gemm::Layout::kNN,
                a.data() + row0 * k, b.data(), c_part.data(), rows, k, n,
                false);
    EXPECT_EQ(0, std::memcmp(c_full.data() + row0 * n, c_part.data(),
                             c_part.size() * sizeof(float)));
  }
}

TEST(Determinism, SpatialConditionFlagChangesArchitecture) {
  UnetConfig with = {};
  with.base_channels = 8;
  with.levels = 2;
  with.cond_dim = 16;
  with.max_steps = 50;
  UnetConfig without = with;
  without.spatial_condition = false;
  Rng r1(1), r2(1);
  UnetDenoiser a(with, &r1);
  UnetDenoiser b(without, &r2);
  // The stem consumes 3 extra channels when spatial conditioning is on.
  EXPECT_GT(a.NumParams(), b.NumParams());
  // The no-spatial variant still runs.
  Rng in_rng(2);
  Tensor x = Tensor::Randn({1, 3, 8, 8}, &in_rng);
  NoGradGuard guard;
  Tensor y = b.PredictNoise(x, {1}, Tensor::Zeros({1, 5}));
  EXPECT_EQ(y.shape(), x.shape());
}

}  // namespace
}  // namespace dot
