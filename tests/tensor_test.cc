// Unit tests for the Tensor core: creation, shapes, autograd plumbing.

#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"

namespace dot {
namespace {

TEST(TensorTest, CreationShapes) {
  Tensor t = Tensor::Zeros({2, 3, 4});
  EXPECT_EQ(t.dim(), 3);
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.size(0), 2);
  EXPECT_EQ(t.size(1), 3);
  EXPECT_EQ(t.size(2), 4);
  EXPECT_EQ(t.size(-1), 4);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, OnesAndFull) {
  Tensor ones = Tensor::Ones({3});
  Tensor full = Tensor::Full({3}, 2.5f);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(ones.at(i), 1.0f);
    EXPECT_EQ(full.at(i), 2.5f);
  }
}

TEST(TensorTest, FromVectorRoundTrip) {
  Tensor t = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(0), 1.0f);
  EXPECT_EQ(t.at(3), 4.0f);
  EXPECT_EQ(t.ShapeString(), "[2, 2]");
}

TEST(TensorTest, ArangeValues) {
  Tensor t = Tensor::Arange(5);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(t.at(i), static_cast<float>(i));
}

TEST(TensorTest, RandnDeterministicUnderSeed) {
  Rng rng1(42), rng2(42);
  Tensor a = Tensor::Randn({16}, &rng1);
  Tensor b = Tensor::Randn({16}, &rng2);
  for (int64_t i = 0; i < 16; ++i) EXPECT_EQ(a.at(i), b.at(i));
}

TEST(TensorTest, CopyIsShallowCloneIsDeep) {
  Tensor a = Tensor::Zeros({2});
  Tensor shallow = a;
  Tensor deep = a.Clone();
  a.at(0) = 7.0f;
  EXPECT_EQ(shallow.at(0), 7.0f);
  EXPECT_EQ(deep.at(0), 0.0f);
}

TEST(TensorTest, ItemRequiresScalar) {
  Tensor t = Tensor::Full({1}, 3.0f);
  EXPECT_EQ(t.item(), 3.0f);
}

TEST(TensorTest, BackwardThroughChain) {
  Tensor x = Tensor::Full({1}, 2.0f).set_requires_grad(true);
  // y = (3x)^2 -> dy/dx = 18x = 36
  Tensor y = Square(MulScalar(x, 3.0f));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad_vec()[0], 36.0f);
}

TEST(TensorTest, BackwardAccumulatesOverSharedInput) {
  Tensor x = Tensor::Full({1}, 3.0f).set_requires_grad(true);
  // y = x*x + x -> dy/dx = 2x + 1 = 7
  Tensor y = Add(Mul(x, x), x);
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad_vec()[0], 7.0f);
}

TEST(TensorTest, DiamondGraphGradient) {
  Tensor x = Tensor::Full({1}, 2.0f).set_requires_grad(true);
  Tensor a = MulScalar(x, 2.0f);   // 2x
  Tensor b = Square(x);            // x^2
  Tensor y = Mul(a, b);            // 2x^3 -> dy/dx = 6x^2 = 24
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad_vec()[0], 24.0f);
}

TEST(TensorTest, NoGradGuardDisablesGraph) {
  Tensor x = Tensor::Full({1}, 2.0f).set_requires_grad(true);
  NoGradGuard guard;
  Tensor y = Square(x);
  EXPECT_EQ(y.grad_fn(), nullptr);
}

TEST(TensorTest, GradModeRestoredAfterGuard) {
  EXPECT_TRUE(GradModeEnabled());
  {
    NoGradGuard guard;
    EXPECT_FALSE(GradModeEnabled());
  }
  EXPECT_TRUE(GradModeEnabled());
}

TEST(TensorTest, ZeroGradClears) {
  Tensor x = Tensor::Full({1}, 2.0f).set_requires_grad(true);
  Square(x).Backward();
  EXPECT_NE(x.grad_vec()[0], 0.0f);
  x.ZeroGrad();
  EXPECT_EQ(x.grad_vec()[0], 0.0f);
}

TEST(TensorTest, DetachBlocksGradient) {
  Tensor x = Tensor::Full({1}, 2.0f).set_requires_grad(true);
  Tensor d = Square(x).Detach();
  EXPECT_EQ(d.grad_fn(), nullptr);
  EXPECT_FLOAT_EQ(d.at(0), 4.0f);
}

TEST(TensorTest, ShapeNumelHelper) {
  EXPECT_EQ(ShapeNumel({2, 3, 4}), 24);
  EXPECT_EQ(ShapeNumel({}), 1);
  EXPECT_EQ(ShapeNumel({0, 5}), 0);
}

}  // namespace
}  // namespace dot
