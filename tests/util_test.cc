// Tests for the util substrate: Status/Result, RNG, tables, thread pool,
// serialization.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "util/checkpoint.h"
#include "util/failpoint.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace dot {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad grid size");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad grid size");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad grid size");
}

TEST(StatusTest, AllConstructorsMapToPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
}

Status Fails() { return Status::NotFound("inner"); }
Status Propagates() {
  DOT_RETURN_NOT_OK(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  Status s = Propagates();
  EXPECT_TRUE(s.IsNotFound());
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v * 2;
}

TEST(ResultTest, ValueAndErrorPaths) {
  Result<int> good = ParsePositive(21);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 42);
  Result<int> bad = ParsePositive(-1);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(RngTest, DeterministicWithSameSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Uniform(), b.Uniform());
}

TEST(RngTest, UniformRangeRespected) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(1, 3);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, CategoricalFollowsWeights) {
  Rng rng(10);
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 30000; ++i) {
    int64_t k = rng.Categorical({1.0, 0.0, 3.0});
    ASSERT_GE(k, 0);
    ASSERT_LT(k, 3);
    counts[k]++;
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(RngTest, CategoricalDegenerateCases) {
  Rng rng(11);
  EXPECT_EQ(rng.Categorical({}), -1);
  EXPECT_EQ(rng.Categorical({0.0, 0.0}), -1);
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng rng(12);
  double sum = 0, sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkDecorrelates) {
  Rng a(14);
  Rng b = a.Fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1000) == b.UniformInt(0, 1000)) ++equal;
  }
  EXPECT_LT(equal, 10);
}

TEST(TableTest, AlignedRendering) {
  Table t("Demo");
  t.SetHeader({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "22.5"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("Demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22.5"), std::string::npos);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
}

TEST(TableTest, CsvRoundTripAndEscaping) {
  Table t("csv");
  t.SetHeader({"a", "b"});
  t.AddRow({"plain", "with,comma"});
  t.AddRow({"quote\"inside", "x"});
  std::string path = ::testing::TempDir() + "/table_test.csv";
  ASSERT_TRUE(t.WriteCsv(path).ok());
  std::ifstream f(path);
  std::string all((std::istreambuf_iterator<char>(f)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(all.find("\"quote\"\"inside\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.Submit([&count] { count++; });
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(5000);
  ParallelFor(
      &pool, 5000,
      [&](int64_t b, int64_t e) {
        for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
      },
      /*min_chunk=*/128);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForInlineForSmallN) {
  std::vector<int> hits(10, 0);
  ParallelFor(nullptr, 10, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  (void)x;
  EXPECT_GE(sw.ElapsedSeconds(), 0.0);
  EXPECT_GE(sw.ElapsedMillis(), sw.ElapsedSeconds() * 1000 - 1e-6);
}

TEST(SerializeTest, RoundTripAllTypes) {
  std::string path = ::testing::TempDir() + "/ser_test.bin";
  {
    BinaryWriter w(path);
    ASSERT_TRUE(w.Ok());
    w.WriteU64(42);
    w.WriteI64(-7);
    w.WriteF64(3.25);
    w.WriteF32(1.5f);
    w.WriteString("hello");
    w.WriteF32Vector({1.0f, 2.0f});
    w.WriteI64Vector({10, 20, 30});
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  ASSERT_TRUE(r.Ok());
  EXPECT_EQ(r.ReadU64(), 42u);
  EXPECT_EQ(r.ReadI64(), -7);
  EXPECT_EQ(r.ReadF64(), 3.25);
  EXPECT_EQ(r.ReadF32(), 1.5f);
  EXPECT_EQ(r.ReadString(), "hello");
  EXPECT_EQ(r.ReadF32Vector(), (std::vector<float>{1.0f, 2.0f}));
  EXPECT_EQ(r.ReadI64Vector(), (std::vector<int64_t>{10, 20, 30}));
  std::remove(path.c_str());
}

TEST(SerializeTest, EmptyVectorsAndStringsRoundTrip) {
  // Regression: WriteRaw used to hand data() of an empty vector — a null
  // pointer — to ostream::write, which is UB even for zero bytes.
  std::string path = ::testing::TempDir() + "/ser_empty.bin";
  {
    BinaryWriter w(path);
    ASSERT_TRUE(w.Ok());
    w.WriteF32Vector({});
    w.WriteI64Vector({});
    w.WriteString("");
    w.WriteU64(99);  // sentinel after the empties
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  ASSERT_TRUE(r.Ok());
  EXPECT_TRUE(r.ReadF32Vector().empty());
  EXPECT_TRUE(r.ReadI64Vector().empty());
  EXPECT_TRUE(r.ReadString().empty());
  EXPECT_EQ(r.ReadU64(), 99u);
  EXPECT_TRUE(r.Ok());
  std::remove(path.c_str());
}

TEST(SerializeTest, Crc32KnownAnswerAndIncremental) {
  // The IEEE 802.3 check value for "123456789".
  const char* s = "123456789";
  EXPECT_EQ(Crc32(s, 9), 0xCBF43926u);
  // An incremental checksum equals the one-shot checksum.
  uint32_t part = Crc32(s, 4);
  EXPECT_EQ(Crc32(s + 4, 5, part), 0xCBF43926u);
  EXPECT_EQ(Crc32(s, 0), 0u);
}

TEST(SerializeTest, WriterAndReaderAgreeOnRunningCrc) {
  std::string path = ::testing::TempDir() + "/ser_crc.bin";
  uint32_t written;
  {
    BinaryWriter w(path);
    w.WriteString("payload");
    w.WriteF32Vector({1.0f, 2.0f, 3.0f});
    written = w.crc();
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  r.ReadString();
  r.ReadF32Vector();
  EXPECT_EQ(r.crc(), written);
  std::remove(path.c_str());
}

TEST(CheckpointTest, RoundTripAndValidation) {
  std::string path = ::testing::TempDir() + "/ckpt_ok.bin";
  {
    CheckpointWriter w(path, "TESTCKPT", 3);
    ASSERT_TRUE(w.Ok());
    w.writer()->WriteF64(2.5);
    ASSERT_TRUE(w.Commit().ok());
  }
  {
    auto r = CheckpointReader::Open(path, "TESTCKPT", 3);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->version(), 3u);
    EXPECT_EQ(r->reader().ReadF64(), 2.5);
  }
  // Wrong magic and too-old max_version are rejected with InvalidArgument.
  EXPECT_TRUE(
      CheckpointReader::Open(path, "OTHER", 3).status().IsInvalidArgument());
  EXPECT_TRUE(
      CheckpointReader::Open(path, "TESTCKPT", 2).status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(CheckpointTest, FlippedByteAndTruncationAreRejected) {
  std::string path = ::testing::TempDir() + "/ckpt_corrupt.bin";
  {
    CheckpointWriter w(path, "TESTCKPT", 1);
    for (int i = 0; i < 64; ++i) w.writer()->WriteF64(i * 0.5);
    ASSERT_TRUE(w.Commit().ok());
  }
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  // Flip one payload byte: the CRC footer must catch it.
  {
    std::string bad = bytes;
    bad[bad.size() / 2] ^= 0x40;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bad;
  }
  Status flipped = CheckpointReader::Open(path, "TESTCKPT", 1).status();
  EXPECT_TRUE(flipped.IsIOError());
  EXPECT_NE(flipped.message().find("checksum"), std::string::npos);
  // Truncate the tail: also rejected before any payload is parsed.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes.substr(0, bytes.size() / 2);
  }
  EXPECT_FALSE(CheckpointReader::Open(path, "TESTCKPT", 1).ok());
  // A nearly-empty file is "truncated", not a crash.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "xy";
  }
  Status tiny = CheckpointReader::Open(path, "TESTCKPT", 1).status();
  EXPECT_TRUE(tiny.IsIOError());
  EXPECT_NE(tiny.message().find("truncated"), std::string::npos);
  std::remove(path.c_str());
  // Missing file.
  EXPECT_TRUE(CheckpointReader::Open(::testing::TempDir() + "/ckpt_nope.bin",
                                     "TESTCKPT", 1)
                  .status()
                  .IsIOError());
}

TEST(CheckpointTest, UncommittedWriterLeavesNoFile) {
  std::string path = ::testing::TempDir() + "/ckpt_abandoned.bin";
  { CheckpointWriter w(path, "TESTCKPT", 1); }  // destroyed without Commit
  EXPECT_FALSE(std::ifstream(path).good());
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
}

// scripts/check.sh runs this suite with DOT_FAILPOINTS="check.smoke=error"
// to smoke-test environment arming end to end; without that environment the
// test is a skip. Declared before any test that calls DisarmAll().
TEST(FailpointTest, EnvArmingSmoke) {
  const char* env = std::getenv("DOT_FAILPOINTS");
  if (env == nullptr ||
      std::string(env).find("check.smoke") == std::string::npos) {
    GTEST_SKIP() << "DOT_FAILPOINTS does not arm check.smoke";
  }
  EXPECT_TRUE(fail::Get("check.smoke")->armed());
  EXPECT_EQ(DOT_FAILPOINT("check.smoke"), fail::Action::kError);
}

TEST(FailpointTest, DisarmedIsOffAndCostsNothingVisible) {
  fail::Failpoint* fp = fail::Get("util_test.probe");
  EXPECT_FALSE(fp->armed());
  EXPECT_EQ(fp->Fire(), fail::Action::kOff);
  EXPECT_EQ(DOT_FAILPOINT("util_test.probe"), fail::Action::kOff);
}

TEST(FailpointTest, ArmCountAutoDisarms) {
  fail::Arm("util_test.count", fail::Action::kError, 2);
  EXPECT_EQ(DOT_FAILPOINT("util_test.count"), fail::Action::kError);
  EXPECT_EQ(DOT_FAILPOINT("util_test.count"), fail::Action::kError);
  EXPECT_EQ(DOT_FAILPOINT("util_test.count"), fail::Action::kOff);
  EXPECT_FALSE(fail::Get("util_test.count")->armed());
  EXPECT_EQ(fail::Get("util_test.count")->fire_count(), 2);
}

TEST(FailpointTest, SpecGrammarArmsAndRejects) {
  ASSERT_TRUE(
      fail::ArmFromSpec("util_test.a=error:1,util_test.b=delay(5)").ok());
  std::vector<std::string> armed = fail::ArmedFailpoints();
  EXPECT_NE(std::find(armed.begin(), armed.end(), "util_test.a"), armed.end());
  EXPECT_NE(std::find(armed.begin(), armed.end(), "util_test.b"), armed.end());
  EXPECT_EQ(fail::Get("util_test.b")->arg(), 5.0);
  fail::DisarmAll();
  EXPECT_TRUE(fail::ArmedFailpoints().empty());
  // Malformed specs arm nothing at all — not even the valid prefix.
  EXPECT_FALSE(fail::ArmFromSpec("util_test.c=error,util_test.d=bogus").ok());
  EXPECT_TRUE(fail::ArmedFailpoints().empty());
  EXPECT_FALSE(fail::ArmFromSpec("missing_equals").ok());
  EXPECT_FALSE(fail::ArmFromSpec("util_test.e=delay(abc)").ok());
  EXPECT_FALSE(fail::ArmFromSpec("util_test.f=error:notanum").ok());
}

TEST(FailpointTest, DelayActionSleepsInsideFire) {
  fail::Arm("util_test.delay", fail::Action::kDelay, 1, /*arg=*/20);
  Stopwatch sw;
  EXPECT_EQ(DOT_FAILPOINT("util_test.delay"), fail::Action::kDelay);
  EXPECT_GE(sw.ElapsedMillis(), 15.0);
  EXPECT_EQ(DOT_FAILPOINT("util_test.delay"), fail::Action::kOff);
}

}  // namespace
}  // namespace dot
