// Fault-tolerance tests (DESIGN.md §5d): the serving degradation ladder
// under injected stage-1 failures and deadlines, bounded retry, checkpoint
// corruption rejection, and NaN-loss training rollback. Faults are
// injected through the failpoint framework (util/failpoint.h).

#include <cmath>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/oracle_service.h"
#include "util/failpoint.h"

namespace dot {
namespace {

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

class RobustnessFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CityConfig cc = CityConfig::ChengduLike();
    cc.grid_nodes = 8;
    cc.spacing_meters = 1300;
    city_ = new City(cc, 4);
    TripConfig tc = TripConfig::ChengduLike();
    tc.num_trips = 300;
    dataset_ = new BenchmarkDataset(BuildDataset(*city_, tc, 17, "robust"));
    grid_ = new Grid(dataset_->MakeGrid(8).ValueOrDie());
    DotConfig cfg;
    cfg.grid_size = 8;
    cfg.diffusion_steps = 30;
    cfg.sample_steps = 6;
    cfg.unet.base_channels = 8;
    cfg.unet.levels = 2;
    cfg.unet.cond_dim = 32;
    cfg.estimator.embed_dim = 32;
    cfg.estimator.layers = 1;
    cfg.stage1_epochs = 1;
    cfg.stage2_epochs = 2;
    cfg.val_samples = 0;
    cfg.stage2_inferred_fraction = 0.0;  // cheap per-process fixture setup
    cfg_ = new DotConfig(cfg);
    oracle_ = new DotOracle(cfg, *grid_);
    ASSERT_TRUE(oracle_->TrainStage1(dataset_->split.train).ok());
    ASSERT_TRUE(
        oracle_->TrainStage2(dataset_->split.train, dataset_->split.val).ok());
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete cfg_;
    delete grid_;
    delete dataset_;
    delete city_;
    oracle_ = nullptr;
    cfg_ = nullptr;
    grid_ = nullptr;
    dataset_ = nullptr;
    city_ = nullptr;
  }
  // Never leak an armed failpoint into the next test.
  void TearDown() override { fail::DisarmAll(); }

  /// A service config that keeps failure-path tests fast: no backoff
  /// sleeps, a single retry.
  static OracleServiceConfig FastRetryConfig() {
    OracleServiceConfig cfg;
    cfg.max_retries = 1;
    cfg.retry_backoff_ms = 0;
    return cfg;
  }

  static int64_t CounterValue(const std::string& name) {
    return obs::MetricsRegistry::Get().GetCounter(name)->Value();
  }

  /// Per-stage training counter (`name{stage="..."}`, DESIGN.md §5k).
  static int64_t StageCounterValue(const std::string& name,
                                   const std::string& stage) {
    return obs::MetricsRegistry::Get()
        .GetCounter(name, {{"stage", stage}})
        ->Value();
  }

  static City* city_;
  static BenchmarkDataset* dataset_;
  static Grid* grid_;
  static DotConfig* cfg_;
  static DotOracle* oracle_;
};

City* RobustnessFixture::city_ = nullptr;
BenchmarkDataset* RobustnessFixture::dataset_ = nullptr;
Grid* RobustnessFixture::grid_ = nullptr;
DotConfig* RobustnessFixture::cfg_ = nullptr;
DotOracle* RobustnessFixture::oracle_ = nullptr;

// ---- Degradation ladder under injected stage-1 failure ---------------------

TEST_F(RobustnessFixture, Stage1FailureDegradesBatchWithoutWaveError) {
  OracleService service(oracle_, FastRetryConfig());
  fail::Arm("dot_oracle.infer_pits", fail::Action::kError);  // unlimited
  std::vector<OdtInput> wave;
  for (int i = 0; i < 6; ++i) wave.push_back(dataset_->split.test[i].odt);
  Result<std::vector<DotEstimate>> r = service.QueryBatch(wave);
  // The acceptance bar: a stage-1 outage never fails the wave — every
  // query gets an estimate, tagged below full quality.
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), wave.size());
  for (const DotEstimate& e : *r) {
    EXPECT_NE(e.quality, ServedQuality::kFull);
    EXPECT_TRUE(std::isfinite(e.minutes));
    EXPECT_GT(e.minutes, 0.0);
  }
}

TEST_F(RobustnessFixture, NanSamplerOutputDegradesInsteadOfServingGarbage) {
  OracleServiceConfig cfg = FastRetryConfig();
  cfg.max_retries = 0;
  OracleService service(oracle_, cfg);
  fail::Arm("diffusion.sample", fail::Action::kNan);
  Result<DotEstimate> r = service.Query(dataset_->split.test[0].odt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The non-finite PiT was detected before stage 2 ever saw it.
  EXPECT_EQ(r->quality, ServedQuality::kFallback);
  EXPECT_TRUE(std::isfinite(r->minutes));
}

TEST_F(RobustnessFixture, TransientFailureIsRetriedToFullQuality) {
  OracleService service(oracle_, FastRetryConfig());
  int64_t retries_before = CounterValue("dot_serving_retries_total");
  fail::Arm("dot_oracle.infer_pits", fail::Action::kError, /*count=*/1);
  Result<DotEstimate> r = service.Query(dataset_->split.test[1].odt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->quality, ServedQuality::kFull);
  EXPECT_EQ(CounterValue("dot_serving_retries_total"), retries_before + 1);
}

TEST_F(RobustnessFixture, RetryExhaustionFallsToFallbackEstimator) {
  OracleServiceConfig cfg = FastRetryConfig();
  cfg.fallback_estimator = [](const OdtInput&) { return 42.0; };
  OracleService service(oracle_, cfg);
  int64_t retries_before = CounterValue("dot_serving_retries_total");
  fail::Arm("dot_oracle.infer_pits", fail::Action::kError);  // unlimited
  Result<DotEstimate> r = service.Query(dataset_->split.test[2].odt);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->quality, ServedQuality::kFallback);
  EXPECT_DOUBLE_EQ(r->minutes, 42.0);
  // One retry at full quality, one at reduced: both ladder levels got
  // their bounded retry budget before the estimator of last resort.
  EXPECT_EQ(CounterValue("dot_serving_retries_total"), retries_before + 2);
}

TEST_F(RobustnessFixture, WithoutFallbackEstimatorServesPriorMean) {
  OracleServiceConfig cfg = FastRetryConfig();
  cfg.max_retries = 0;
  OracleService service(oracle_, cfg);
  fail::Arm("dot_oracle.infer_pits", fail::Action::kError);
  Result<DotEstimate> r = service.Query(dataset_->split.test[3].odt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->quality, ServedQuality::kFallback);
  EXPECT_DOUBLE_EQ(r->minutes, oracle_->prior_mean_minutes());
}

TEST_F(RobustnessFixture, NeighborBucketServesWhenStage1IsDown) {
  OracleServiceConfig cfg = FastRetryConfig();
  cfg.max_retries = 0;
  OracleService service(oracle_, cfg);
  OdtInput odt = dataset_->split.test[4].odt;
  // Warm this OD pair's bucket at full quality...
  Result<DotEstimate> warm = service.Query(odt);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->quality, ServedQuality::kFull);
  // ...then kill stage 1 and ask for the *next* 30-minute slot.
  fail::Arm("dot_oracle.infer_pits", fail::Action::kError);
  OdtInput shifted = odt;
  shifted.departure_time += 86400 / cfg.tod_slots;
  Result<DotEstimate> r = service.Query(shifted);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->quality, ServedQuality::kCachedNeighbor);
  // The borrowed PiT is the warmed bucket's: same travel-time estimate as
  // re-scoring the cached PiT (modulo the shifted departure features).
  EXPECT_TRUE(std::isfinite(r->minutes));
}

TEST_F(RobustnessFixture, DegradedAnswersAreNeverCached) {
  OracleServiceConfig cfg = FastRetryConfig();
  cfg.max_retries = 0;
  OracleService service(oracle_, cfg);
  fail::Arm("dot_oracle.infer_pits", fail::Action::kError);
  ASSERT_TRUE(service.Query(dataset_->split.test[5].odt).ok());
  EXPECT_EQ(service.cache_size(), 0);
  fail::DisarmAll();
  // Healthy again: the same query now pays the miss and caches.
  Result<DotEstimate> r = service.Query(dataset_->split.test[5].odt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->quality, ServedQuality::kFull);
  EXPECT_EQ(service.cache_size(), 1);
}

TEST_F(RobustnessFixture, TinyDeadlineDegradesInsteadOfRunningLate) {
  OracleService service(oracle_);
  // Populate the stage-1 latency histogram the triage predicts from.
  ASSERT_TRUE(service.Query(dataset_->split.test[6].odt).ok());
  service.ClearCache();
  QueryOptions opts;
  opts.deadline_ms = 1e-3;  // 1us: not even a reduced pass can fit
  Result<DotEstimate> r = service.Query(dataset_->split.test[6].odt, opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->quality, ServedQuality::kFallback);
  EXPECT_TRUE(std::isfinite(r->minutes));
  EXPECT_GE(obs::MetricsRegistry::Get()
                .GetCounter("dot_serving_degraded_total",
                            {{"level", "fallback"}})
                ->Value(),
            1);
}

TEST_F(RobustnessFixture, FailpointEnvSpecDrivesTheLadder) {
  // The same arming path DOT_FAILPOINTS uses (parsed spec), end to end.
  // One error fire: the full-quality attempt fails, the reduced-steps
  // attempt finds the failpoint exhausted and succeeds.
  ASSERT_TRUE(fail::ArmFromSpec("dot_oracle.infer_pits=error:1").ok());
  OracleServiceConfig cfg = FastRetryConfig();
  cfg.max_retries = 0;
  OracleService service(oracle_, cfg);
  std::vector<OdtInput> wave = {dataset_->split.test[7].odt,
                                dataset_->split.test[8].odt};
  // First wave: full fails, reduced-steps succeeds (count exhausted).
  Result<std::vector<DotEstimate>> r = service.QueryBatch(wave);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (const DotEstimate& e : *r) {
    EXPECT_EQ(e.quality, ServedQuality::kReducedSteps);
  }
  // Second wave: failpoint spent, back to full quality.
  service.ClearCache();
  r = service.QueryBatch(wave);
  ASSERT_TRUE(r.ok());
  for (const DotEstimate& e : *r) EXPECT_EQ(e.quality, ServedQuality::kFull);
}

// ---- Input validation at the service boundary ------------------------------

TEST_F(RobustnessFixture, OutOfAreaAndBadTimeQueriesAreRejected) {
  OracleService service(oracle_);
  OdtInput good = dataset_->split.test[0].odt;

  OdtInput far = good;
  far.origin.lng = grid_->box().max_lng + 1.0;
  EXPECT_TRUE(service.Query(far).status().IsInvalidArgument());

  OdtInput nan_dest = good;
  nan_dest.destination.lat = std::nan("");
  EXPECT_TRUE(service.Query(nan_dest).status().IsInvalidArgument());

  OdtInput past = good;
  past.departure_time = -1;
  EXPECT_TRUE(service.Query(past).status().IsInvalidArgument());

  // In a batch, the error names the offending index and rejects the wave.
  Status s = service.QueryBatch({good, far}).status();
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("batch query 1"), std::string::npos);
  // Nothing was counted or cached for the rejected wave.
  EXPECT_EQ(service.stats().queries, 0);
  EXPECT_EQ(service.cache_size(), 0);
}

// ---- Checkpoint corruption -------------------------------------------------

TEST_F(RobustnessFixture, CorruptAndTruncatedCheckpointsAreRejected) {
  std::string path = ::testing::TempDir() + "/robust_oracle.bin";
  ASSERT_TRUE(oracle_->SaveFile(path).ok());

  {  // Intact file loads into a fresh oracle.
    DotOracle fresh(*cfg_, *grid_);
    ASSERT_TRUE(fresh.LoadFile(path).ok());
    EXPECT_TRUE(fresh.trained());
  }

  std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 40u);

  {  // One flipped payload byte: rejected by the CRC footer.
    std::string bad = bytes;
    bad[bad.size() / 2] ^= 0x01;
    std::ofstream(path, std::ios::binary | std::ios::trunc) << bad;
    DotOracle fresh(*cfg_, *grid_);
    Status s = fresh.LoadFile(path);
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.message().find("checksum"), std::string::npos);
    EXPECT_FALSE(fresh.trained());
  }

  {  // Truncated tail: rejected before any weight is parsed.
    std::ofstream(path, std::ios::binary | std::ios::trunc)
        << bytes.substr(0, bytes.size() / 3);
    DotOracle fresh(*cfg_, *grid_);
    EXPECT_FALSE(fresh.LoadFile(path).ok());
    EXPECT_FALSE(fresh.trained());
  }

  {  // Wrong container kind: a stage-1 checkpoint is not a full oracle.
    ASSERT_TRUE(oracle_->SaveStage1(path).ok());
    DotOracle fresh(*cfg_, *grid_);
    Status s = fresh.LoadFile(path);
    ASSERT_FALSE(s.ok());
    EXPECT_NE(s.message().find("magic"), std::string::npos);
  }
  std::remove(path.c_str());
}

TEST_F(RobustnessFixture, TornWriteFailpointIsCaughtAtLoadTime) {
  std::string path = ::testing::TempDir() + "/robust_torn.bin";
  // The failpoint publishes a half-written file while reporting success —
  // the crash-between-write-and-fsync scenario.
  fail::Arm("checkpoint.commit", fail::Action::kTruncate, /*count=*/1);
  ASSERT_TRUE(oracle_->SaveFile(path).ok());
  DotOracle fresh(*cfg_, *grid_);
  EXPECT_FALSE(fresh.LoadFile(path).ok());
  EXPECT_FALSE(fresh.trained());
  std::remove(path.c_str());
}

TEST_F(RobustnessFixture, LoadFailpointInjectsIoError) {
  std::string path = ::testing::TempDir() + "/robust_load_fp.bin";
  ASSERT_TRUE(oracle_->SaveFile(path).ok());
  fail::Arm("dot_oracle.load", fail::Action::kError, /*count=*/1);
  DotOracle fresh(*cfg_, *grid_);
  EXPECT_TRUE(fresh.LoadFile(path).IsIOError());
  // The failpoint was consumed; the retry loads fine.
  EXPECT_TRUE(fresh.LoadFile(path).ok());
  std::remove(path.c_str());
}

// ---- Training hardening ----------------------------------------------------

TEST_F(RobustnessFixture, NanLossRollsBackToLastGoodWeights) {
  DotOracle oracle(*cfg_, *grid_);
  ASSERT_TRUE(oracle.TrainStage1(dataset_->split.train).ok());
  std::string before = ::testing::TempDir() + "/robust_s1_before.bin";
  std::string after = ::testing::TempDir() + "/robust_s1_after.bin";
  ASSERT_TRUE(oracle.SaveStage1(before).ok());

  int64_t rollbacks_before =
      StageCounterValue("dot_train_rollbacks_total", "stage1");
  int64_t skipped_before =
      StageCounterValue("dot_train_skipped_steps_total", "stage1");
  fail::Arm("train.stage1.nan_loss", fail::Action::kNan);  // every step
  ASSERT_TRUE(oracle.TrainStage1(dataset_->split.train).ok());
  fail::DisarmAll();

  // Every poisoned step was skipped, the consecutive-bad budget tripped at
  // least one rollback, and the weights are exactly the last-good ones.
  EXPECT_GT(StageCounterValue("dot_train_rollbacks_total", "stage1"),
            rollbacks_before);
  EXPECT_GT(StageCounterValue("dot_train_skipped_steps_total", "stage1"),
            skipped_before);
  EXPECT_GT(oracle.stage1_report().rollbacks, 0);
  EXPECT_GT(oracle.stage1_report().skipped_steps, 0);
  EXPECT_EQ(oracle.stage1_report().steps, 0);
  ASSERT_TRUE(oracle.SaveStage1(after).ok());
  EXPECT_EQ(ReadFileBytes(before), ReadFileBytes(after));
  std::remove(before.c_str());
  std::remove(after.c_str());
}

TEST_F(RobustnessFixture, Stage2NanLossIsSkippedNotTrainedOn) {
  DotOracle oracle(*cfg_, *grid_);
  ASSERT_TRUE(oracle.TrainStage1(dataset_->split.train).ok());
  int64_t skipped_before =
      StageCounterValue("dot_train_skipped_steps_total", "stage2");
  fail::Arm("train.stage2.nan_loss", fail::Action::kNan);
  ASSERT_TRUE(
      oracle.TrainStage2(dataset_->split.train, dataset_->split.val).ok());
  fail::DisarmAll();
  EXPECT_GT(StageCounterValue("dot_train_skipped_steps_total", "stage2"),
            skipped_before);
  // The oracle still serves (stage-2 weights are the last-good ones).
  Result<DotEstimate> r = oracle.Estimate(dataset_->split.test[0].odt);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::isfinite(r->minutes));
}

TEST_F(RobustnessFixture, GradientClippingBoundsTheStepNorm) {
  // Clipping must not break training; with a tiny clip norm the stage
  // still converges to *a* model and serves finite estimates.
  DotConfig cfg = *cfg_;
  cfg.grad_clip_norm = 0.5f;
  cfg.stage1_epochs = 1;
  DotOracle oracle(cfg, *grid_);
  ASSERT_TRUE(oracle.TrainStage1(dataset_->split.train).ok());
  ASSERT_TRUE(
      oracle.TrainStage2(dataset_->split.train, dataset_->split.val).ok());
  Result<DotEstimate> r = oracle.Estimate(dataset_->split.test[0].odt);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(std::isfinite(r->minutes));
}

}  // namespace
}  // namespace dot
