// Parameterized property tests (TEST_P sweeps) over the core invariants:
// convolution shapes/gradients across geometry combinations, diffusion
// schedule laws across N, grid round-trips across sizes, PiT invariants
// across resolutions, and Yen's algorithm properties across k.

#include <gtest/gtest.h>

#include "core/diffusion.h"
#include "geo/pit.h"
#include "gradcheck.h"
#include "road/road_network.h"
#include "tensor/ops.h"

namespace dot {
namespace {

// ---- Conv2d geometry sweep ---------------------------------------------------

struct ConvCase {
  int64_t size, kernel, stride, pad;
};

class ConvProperty : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvProperty, OutputShapeFormula) {
  ConvCase p = GetParam();
  Rng rng(1);
  Tensor x = Tensor::Randn({2, 3, p.size, p.size}, &rng);
  Tensor w = Tensor::Randn({4, 3, p.kernel, p.kernel}, &rng);
  NoGradGuard guard;
  Tensor y = Conv2d(x, w, Tensor(), p.stride, p.pad);
  int64_t expect = (p.size + 2 * p.pad - p.kernel) / p.stride + 1;
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 4, expect, expect}));
}

TEST_P(ConvProperty, GradientMatchesFiniteDifferences) {
  ConvCase p = GetParam();
  Rng rng(2);
  Tensor x = Tensor::Rand({1, 2, p.size, p.size}, &rng, -1, 1);
  Tensor w = Tensor::Rand({2, 2, p.kernel, p.kernel}, &rng, -1, 1);
  dot::testing::ExpectGradientsMatch(
      {x, w},
      [p](const std::vector<Tensor>& in) {
        return Mean(Square(Conv2d(in[0], in[1], Tensor(), p.stride, p.pad)));
      },
      /*h=*/1e-2f, /*rtol=*/0.1f, /*atol=*/2e-3f);
}

INSTANTIATE_TEST_SUITE_P(Geometries, ConvProperty,
                         ::testing::Values(ConvCase{6, 3, 1, 1},
                                           ConvCase{6, 3, 2, 1},
                                           ConvCase{7, 3, 2, 1},
                                           ConvCase{5, 1, 1, 0},
                                           ConvCase{8, 5, 1, 2},
                                           ConvCase{9, 3, 3, 0}));

// ---- Diffusion schedule laws ---------------------------------------------------

class ScheduleProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(ScheduleProperty, AlphaBarDecaysToNoiseForAnyN) {
  int64_t n = GetParam();
  DiffusionSchedule s(n);
  // Laws that must hold for every N: monotone decay, product identity,
  // near-total signal destruction at the end.
  double prod = 1;
  for (int64_t i = 0; i < n; ++i) {
    prod *= s.alpha(i);
    EXPECT_NEAR(s.alpha_bar(i), prod, 1e-12);
    if (i > 0) EXPECT_LT(s.alpha_bar(i), s.alpha_bar(i - 1));
    EXPECT_GT(s.beta(i), 0);
    EXPECT_LT(s.beta(i), 1);
  }
  EXPECT_LT(s.alpha_bar(n - 1), 0.05);
  EXPECT_GT(s.alpha_bar(0), 0.9);
}

TEST_P(ScheduleProperty, QSamplePreservesVarianceBudget) {
  int64_t n = GetParam();
  Diffusion d{DiffusionSchedule(n)};
  Rng rng(static_cast<uint64_t>(n));
  // For x0 with unit values, E[x_n^2] = ab + (1 - ab) = 1 (variance budget).
  Tensor x0 = Tensor::Ones({1, 3, 8, 8});
  Tensor eps = Tensor::Randn(x0.shape(), &rng);
  Tensor xn = d.QSample(x0, {n / 2}, eps);
  double second_moment = 0;
  for (int64_t i = 0; i < xn.numel(); ++i) second_moment += xn.at(i) * xn.at(i);
  second_moment /= static_cast<double>(xn.numel());
  EXPECT_NEAR(second_moment, 1.0, 0.25);
}

INSTANTIATE_TEST_SUITE_P(Steps, ScheduleProperty,
                         ::testing::Values(10, 50, 200, 1000));

// ---- Grid round-trips across sizes ----------------------------------------------

class GridProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(GridProperty, CellIndexBijective) {
  int64_t l = GetParam();
  Grid grid = Grid::Make(BoundingBox{104.0, 30.0, 104.2, 30.2}, l).ValueOrDie();
  for (int64_t i = 0; i < grid.num_cells(); ++i) {
    Cell c = grid.CellAt(i);
    EXPECT_EQ(grid.CellIndex(c), i);
    EXPECT_EQ(grid.Locate(grid.CellCenter(c)), c);
  }
}

TEST_P(GridProperty, RandomPointsLocateInBounds) {
  int64_t l = GetParam();
  Grid grid = Grid::Make(BoundingBox{104.0, 30.0, 104.2, 30.2}, l).ValueOrDie();
  Rng rng(static_cast<uint64_t>(l));
  for (int i = 0; i < 200; ++i) {
    GpsPoint p{rng.Uniform(103.9, 104.3), rng.Uniform(29.9, 30.3)};
    Cell c = grid.Locate(p);
    EXPECT_GE(c.row, 0);
    EXPECT_LT(c.row, l);
    EXPECT_GE(c.col, 0);
    EXPECT_LT(c.col, l);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GridProperty, ::testing::Values(1, 5, 16, 30));

// ---- PiT invariants across resolutions -------------------------------------------

class PitProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(PitProperty, BuildInvariants) {
  int64_t l = GetParam();
  Grid grid = Grid::Make(BoundingBox{0, 0, 1, 1}, l).ValueOrDie();
  Rng rng(static_cast<uint64_t>(l) + 7);
  Trajectory t;
  int64_t now = 1541030400;
  for (int i = 0; i < 12; ++i) {
    t.points.push_back({{rng.Uniform(0, 1), rng.Uniform(0, 1)}, now});
    now += 60;
  }
  Pit pit = Pit::Build(t, grid);
  // Invariants: visited count within [1, points]; channels of visited cells
  // within [-1, 1]; unvisited cells all -1; endpoints' offsets are -1/+1.
  EXPECT_GE(pit.NumVisited(), 1);
  EXPECT_LE(pit.NumVisited(), 12);
  for (int64_t r = 0; r < l; ++r) {
    for (int64_t c = 0; c < l; ++c) {
      for (int64_t ch = 0; ch < kPitChannels; ++ch) {
        float v = pit.At(ch, r, c);
        EXPECT_GE(v, -1.0f);
        EXPECT_LE(v, 1.0f);
        if (!pit.Visited(r, c)) EXPECT_EQ(v, -1.0f);
      }
    }
  }
  Cell first = grid.Locate(t.points.front().gps);
  EXPECT_NEAR(pit.At(kPitTimeOffset, first.row, first.col), -1.0f, 1e-6);
  // Sequence recovery is sorted by offset.
  auto seq = PitToCellSequence(pit);
  EXPECT_EQ(static_cast<int64_t>(seq.size()), pit.NumVisited());
  float prev = -2;
  for (int64_t idx : seq) {
    float off = pit.At(kPitTimeOffset, idx / l, idx % l);
    EXPECT_GE(off, prev);
    prev = off;
  }
}

TEST_P(PitProperty, CompareRoutesSelfIsPerfect) {
  int64_t l = GetParam();
  Grid grid = Grid::Make(BoundingBox{0, 0, 1, 1}, l).ValueOrDie();
  Trajectory t;
  t.points.push_back({{0.1, 0.1}, 0});
  t.points.push_back({{0.9, 0.9}, 300});
  Pit pit = Pit::Build(t, grid, true);
  RouteAccuracy a = CompareRoutes(pit, pit);
  EXPECT_DOUBLE_EQ(a.precision, 1.0);
  EXPECT_DOUBLE_EQ(a.recall, 1.0);
  EXPECT_DOUBLE_EQ(a.f1, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Resolutions, PitProperty,
                         ::testing::Values(4, 10, 20, 32));

// ---- Yen k-shortest-paths properties ----------------------------------------------

class YenProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(YenProperty, PathsSortedDistinctAndValid) {
  int64_t k = GetParam();
  // 4x4 lattice.
  RoadNetwork net;
  for (int64_t y = 0; y < 4; ++y) {
    for (int64_t x = 0; x < 4; ++x) {
      net.AddNode({0.01 * static_cast<double>(x), 0.01 * static_cast<double>(y)});
    }
  }
  for (int64_t y = 0; y < 4; ++y) {
    for (int64_t x = 0; x + 1 < 4; ++x) net.AddBidirectional(y * 4 + x, y * 4 + x + 1);
  }
  for (int64_t x = 0; x < 4; ++x) {
    for (int64_t y = 0; y + 1 < 4; ++y) net.AddBidirectional(y * 4 + x, (y + 1) * 4 + x);
  }
  auto paths = net.KShortestPaths(0, 15, k);
  EXPECT_LE(static_cast<int64_t>(paths.size()), k);
  EXPECT_GE(paths.size(), 1u);
  for (size_t i = 0; i < paths.size(); ++i) {
    // Valid chain from 0 to 15.
    EXPECT_EQ(paths[i].node_path.front(), 0);
    EXPECT_EQ(paths[i].node_path.back(), 15);
    for (size_t e = 0; e < paths[i].edge_path.size(); ++e) {
      EXPECT_EQ(net.edge(paths[i].edge_path[e]).from, paths[i].node_path[e]);
      EXPECT_EQ(net.edge(paths[i].edge_path[e]).to, paths[i].node_path[e + 1]);
    }
    if (i > 0) {
      EXPECT_GE(paths[i].cost, paths[i - 1].cost - 1e-9);
      EXPECT_NE(paths[i].node_path, paths[i - 1].node_path);
    }
    // Loopless.
    std::set<int64_t> seen(paths[i].node_path.begin(), paths[i].node_path.end());
    EXPECT_EQ(seen.size(), paths[i].node_path.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, YenProperty, ::testing::Values(1, 2, 5, 10));

}  // namespace
}  // namespace dot
