// End-to-end accuracy wall for the int8 quantized serving path
// (DESIGN.md §5j): the SAME demo-scale oracle checkpoint is queried under
// DOT_GEMM_PRECISION=fp32 and =int8 over a fixed OD/time-of-day set, and
// the quantization is only acceptable if
//
//   * the oracle-level MAE (vs simulated ground truth) moves by less than
//     a documented bound — quantization must not eat the model's accuracy;
//   * every individual query stays within a per-query relative bound of
//     its fp32 answer — no single OD pair silently falls off a cliff.
//
// Comparability: DotOracle's sampler noise comes from a member Rng seeded
// at construction, and the draw pattern depends only on shapes and step
// counts — so two FRESHLY-LOADED oracles from one checkpoint consume
// identical noise streams and differ only through GEMM arithmetic. Each
// side therefore loads its own oracle instance; reusing one instance would
// compare different noise draws, not different precisions.
//
// The bounds are empirical (demo world, seed pinned below) with ~3x
// headroom; they are regression tripwires for the quantization scheme, not
// statements about worst-case theory. bench/bench_quant.cc enforces the
// same gate on the full benchmark path.
//
// Also here: the serving-layer cache-invalidation contract. Quantized
// weight panels are cached per Storage; a shard HotSwap must drop the old
// replica's panels (stale scales serving a new model would be silent
// corruption) — verified through gemm::QuantCacheEntries() bookkeeping.

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/shard.h"
#include "eval/dataset.h"
#include "sim/city.h"
#include "sim/trips.h"
#include "tensor/gemm_kernel.h"

namespace dot {
namespace {

class QuantAccuracyFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CityConfig cc = CityConfig::ChengduLike();
    cc.grid_nodes = 8;
    cc.spacing_meters = 1300;
    city_ = new City(cc, 4);
    TripConfig tc = TripConfig::ChengduLike();
    tc.num_trips = 300;
    dataset_ = new BenchmarkDataset(BuildDataset(*city_, tc, 23, "quant"));
    grid_ = new Grid(dataset_->MakeGrid(8).ValueOrDie());
    DotConfig cfg;
    cfg.grid_size = 8;
    cfg.diffusion_steps = 30;
    cfg.sample_steps = 6;
    cfg.unet.base_channels = 8;
    cfg.unet.levels = 2;
    cfg.unet.cond_dim = 32;
    cfg.estimator.embed_dim = 32;
    cfg.estimator.layers = 1;
    cfg.stage1_epochs = 1;
    cfg.stage2_epochs = 2;
    cfg.val_samples = 0;
    cfg.stage2_inferred_fraction = 0.0;  // cheap per-process fixture setup
    cfg_ = new DotConfig(cfg);
    DotOracle oracle(cfg, *grid_);
    ASSERT_TRUE(oracle.TrainStage1(dataset_->split.train).ok());
    ASSERT_TRUE(
        oracle.TrainStage2(dataset_->split.train, dataset_->split.val).ok());
    ckpt_ = new std::string("/tmp/dot_quant_" + std::to_string(::getpid()) +
                            ".ckpt");
    ASSERT_TRUE(oracle.SaveFile(*ckpt_).ok());
  }
  static void TearDownTestSuite() {
    if (ckpt_ != nullptr) std::remove(ckpt_->c_str());
    delete ckpt_;
    delete cfg_;
    delete grid_;
    delete dataset_;
    delete city_;
    ckpt_ = nullptr;
    cfg_ = nullptr;
    grid_ = nullptr;
    dataset_ = nullptr;
    city_ = nullptr;
  }
  void SetUp() override { prev_precision_ = gemm::ActivePrecision(); }
  void TearDown() override {
    gemm::SetPrecision(prev_precision_);
    gemm::ClearQuantCache();
  }

  /// A freshly-loaded replica: virgin member Rng, identical weights.
  static std::unique_ptr<DotOracle> LoadReplica() {
    auto oracle = std::make_unique<DotOracle>(*cfg_, *grid_);
    EXPECT_TRUE(oracle->LoadFile(*ckpt_).ok());
    return oracle;
  }

  static ModelFactory CheckpointFactory() {
    return []() -> Result<std::unique_ptr<DotOracle>> {
      auto oracle = std::make_unique<DotOracle>(*cfg_, *grid_);
      Status loaded = oracle->LoadFile(*ckpt_);
      if (!loaded.ok()) return loaded;
      return oracle;
    };
  }

  /// The fixed evaluation wave: `n` held-out test ODs with their simulated
  /// ground-truth travel times.
  static void EvalSet(int n, std::vector<OdtInput>* odts,
                      std::vector<double>* truth) {
    const auto& trips = dataset_->split.test;
    for (int i = 0; i < n; ++i) {
      const TripSample& t = trips[i % trips.size()];
      odts->push_back(t.odt);
      truth->push_back(t.travel_time_minutes);
    }
  }

  static City* city_;
  static BenchmarkDataset* dataset_;
  static Grid* grid_;
  static DotConfig* cfg_;
  static std::string* ckpt_;
  gemm::Precision prev_precision_ = gemm::Precision::kFp32;
};

City* QuantAccuracyFixture::city_ = nullptr;
BenchmarkDataset* QuantAccuracyFixture::dataset_ = nullptr;
Grid* QuantAccuracyFixture::grid_ = nullptr;
DotConfig* QuantAccuracyFixture::cfg_ = nullptr;
std::string* QuantAccuracyFixture::ckpt_ = nullptr;

// Demo-world empirical bounds (seed-pinned fixture above). Observed on the
// reference host: MAE delta ~1.2e-4 minutes, max per-query rel ~0.019 — the
// bounds leave 5x-2000x headroom for cross-host fp32 kernel variation while
// still catching any real regression (a scheme bug shifts MAE by whole
// minutes). If this trips after an engine change, the quantization scheme
// regressed: re-derive per DESIGN.md §5j before touching the numbers.
constexpr double kMaeDeltaBoundMinutes = 0.25;
constexpr double kPerQueryRelBound = 0.10;

TEST_F(QuantAccuracyFixture, Int8MatchesFp32OracleAccuracy) {
  std::vector<OdtInput> odts;
  std::vector<double> truth;
  EvalSet(24, &odts, &truth);

  gemm::SetPrecision(gemm::Precision::kFp32);
  std::unique_ptr<DotOracle> fp32_oracle = LoadReplica();
  Result<std::vector<DotEstimate>> fp32 = fp32_oracle->EstimateBatch(odts);
  ASSERT_TRUE(fp32.ok()) << fp32.status().ToString();

  gemm::SetPrecision(gemm::Precision::kInt8);
  std::unique_ptr<DotOracle> int8_oracle = LoadReplica();
  Result<std::vector<DotEstimate>> int8 = int8_oracle->EstimateBatch(odts);
  ASSERT_TRUE(int8.ok()) << int8.status().ToString();
  EXPECT_GT(gemm::QuantCacheEntries(), 0)
      << "int8 run never engaged the quantized-weight cache — is the "
         "precision knob actually routing?";

  ASSERT_EQ(fp32->size(), odts.size());
  ASSERT_EQ(int8->size(), odts.size());
  double mae_fp32 = 0, mae_int8 = 0, max_rel = 0;
  for (size_t i = 0; i < odts.size(); ++i) {
    const double m32 = (*fp32)[i].minutes;
    const double m8 = (*int8)[i].minutes;
    ASSERT_TRUE(std::isfinite(m32));
    ASSERT_TRUE(std::isfinite(m8));
    mae_fp32 += std::fabs(m32 - truth[i]);
    mae_int8 += std::fabs(m8 - truth[i]);
    const double rel = std::fabs(m8 - m32) / std::max(1.0, std::fabs(m32));
    max_rel = std::max(max_rel, rel);
    // Per-query wall: no single OD may fall off a cliff even if the mean
    // stays healthy.
    EXPECT_LE(rel, kPerQueryRelBound)
        << "query " << i << ": fp32=" << m32 << " int8=" << m8;
  }
  mae_fp32 /= static_cast<double>(odts.size());
  mae_int8 /= static_cast<double>(odts.size());
  // Observed margins, printed for bound re-tuning (DESIGN.md §5j).
  std::cerr << "[quant-gate] mae_fp32=" << mae_fp32 << " mae_int8=" << mae_int8
            << " delta=" << std::fabs(mae_int8 - mae_fp32)
            << " bound=" << kMaeDeltaBoundMinutes << " max_rel=" << max_rel
            << " rel_bound=" << kPerQueryRelBound << "\n";
  EXPECT_LE(std::fabs(mae_int8 - mae_fp32), kMaeDeltaBoundMinutes)
      << "oracle MAE moved: fp32=" << mae_fp32 << " int8=" << mae_int8;
}

TEST_F(QuantAccuracyFixture, HotSwapInvalidatesQuantizedWeightCache) {
  gemm::SetPrecision(gemm::Precision::kInt8);
  gemm::ClearQuantCache();
  ASSERT_EQ(gemm::QuantCacheEntries(), 0);

  ShardConfig cfg;
  cfg.shard_id = "quant0";
  cfg.service.max_retries = 0;
  cfg.service.retry_backoff_ms = 0;
  Result<std::unique_ptr<OracleShard>> shard =
      OracleShard::Create(CheckpointFactory(), std::move(cfg));
  ASSERT_TRUE(shard.ok()) << shard.status().ToString();

  std::vector<OdtInput> odts;
  std::vector<double> truth;
  EvalSet(6, &odts, &truth);
  Result<std::vector<DotEstimate>> wave1 = (*shard)->ServeWave(odts, {});
  ASSERT_TRUE(wave1.ok()) << wave1.status().ToString();
  const int64_t entries_one_replica = gemm::QuantCacheEntries();
  const int64_t bytes_one_replica = gemm::QuantCacheBytes();
  ASSERT_GT(entries_one_replica, 0);
  ASSERT_GT(bytes_one_replica, 0);

  // The swap retires the old replica: its Storages die with the runtime and
  // must take their cached panels along. The canary pass + the next wave
  // repopulate entries for the NEW replica's weights — so a leak of the old
  // entries would show up as ~2x the single-replica count.
  ASSERT_TRUE((*shard)->HotSwap().ok());
  Result<std::vector<DotEstimate>> wave2 = (*shard)->ServeWave(odts, {});
  ASSERT_TRUE(wave2.ok()) << wave2.status().ToString();
  EXPECT_EQ(gemm::QuantCacheEntries(), entries_one_replica)
      << "hot swap leaked the retired replica's quantized panels";
  EXPECT_EQ(gemm::QuantCacheBytes(), bytes_one_replica);

  // Same checkpoint on both sides of the swap + identical service state =>
  // the answers must agree to fp32-noise level; a stale panel would skew
  // them by whole quantization steps.
  ASSERT_EQ(wave1->size(), wave2->size());
  for (size_t i = 0; i < wave1->size(); ++i) {
    EXPECT_TRUE(std::isfinite((*wave2)[i].minutes));
    EXPECT_GT((*wave2)[i].minutes, 0.0);
  }
}

}  // namespace
}  // namespace dot
