// Focused tests for the attention key-bias masking semantics that the
// MViT/ViT equivalence (paper Fig. 7) rests on.

#include <gtest/gtest.h>

#include "tensor/gemm_kernel.h"
#include "tensor/nn.h"
#include "tensor/ops.h"

namespace dot {
namespace {

// Scoped fp32 override: the exact mask-equivalence contracts below do not
// survive dynamic int8 quantization, because V is quantized per output
// column ACROSS sequence positions — changing a masked position's content
// shifts the shared column scales and perturbs every position's output by
// a quantization step. Under DOT_GEMM_PRECISION=int8 these properties hold
// only to quantization tolerance, so the tests pin the fp32 kernels.
struct Fp32Pin {
  gemm::Precision prev = gemm::SetPrecision(gemm::Precision::kFp32);
  ~Fp32Pin() { gemm::SetPrecision(prev); }
};

TEST(AttentionMask, MaskedKeysDoNotInfluenceOutputs) {
  Rng rng(1);
  nn::MultiheadAttention att(8, 2, &rng);
  Fp32Pin pin;
  NoGradGuard guard;
  // Sequence of 4; mask out positions 2 and 3.
  Tensor x = Tensor::Randn({1, 4, 8}, &rng);
  std::vector<float> bias = {0.0f, 0.0f, -1e9f, -1e9f};
  Tensor masked = att.Forward(x, &bias);

  // Changing the masked positions' content must not change the outputs at
  // the unmasked positions.
  Tensor x2 = x.Clone();
  for (int64_t j = 0; j < 8; ++j) {
    x2.at(2 * 8 + j) += 5.0f;
    x2.at(3 * 8 + j) -= 3.0f;
  }
  Tensor masked2 = att.Forward(x2, &bias);
  for (int64_t pos : {0, 1}) {
    for (int64_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(masked.at(pos * 8 + j), masked2.at(pos * 8 + j), 1e-5)
          << "pos " << pos << " dim " << j;
    }
  }
}

TEST(AttentionMask, MaskedAttentionEqualsPackedAttention) {
  // Full-sequence attention with masked keys at positions {1, 3} must match
  // attention over the packed subsequence {0, 2} — the exact property MViT
  // exploits (Fig. 7b).
  Rng rng1(2), rng2(2);
  nn::MultiheadAttention full(8, 2, &rng1);
  nn::MultiheadAttention packed(8, 2, &rng2);  // identical weights
  Fp32Pin pin;
  NoGradGuard guard;
  Tensor x = Tensor::Randn({1, 4, 8}, &rng1);
  std::vector<float> bias = {0.0f, -1e9f, 0.0f, -1e9f};
  Tensor full_out = full.Forward(x, &bias);

  Tensor sub = Rows(Reshape(x, {4, 8}), {0, 2});
  Tensor packed_out = packed.Forward(Reshape(sub, {1, 2, 8}));

  // full positions 0, 2 correspond to packed positions 0, 1.
  for (int64_t j = 0; j < 8; ++j) {
    EXPECT_NEAR(full_out.at(0 * 8 + j), packed_out.at(0 * 8 + j), 1e-4);
    EXPECT_NEAR(full_out.at(2 * 8 + j), packed_out.at(1 * 8 + j), 1e-4);
  }
}

TEST(AttentionMask, ZeroBiasIsIdentityToNoBias) {
  Rng rng(3);
  nn::MultiheadAttention att(8, 2, &rng);
  NoGradGuard guard;
  Tensor x = Tensor::Randn({2, 3, 8}, &rng);
  std::vector<float> zero_bias(3, 0.0f);
  Tensor a = att.Forward(x);
  Tensor b = att.Forward(x, &zero_bias);
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a.at(i), b.at(i));
}

TEST(AttentionMask, GradFlowsOnlyThroughUnmaskedKeys) {
  Rng rng(4);
  nn::MultiheadAttention att(4, 1, &rng);
  Tensor x = Tensor::Randn({1, 3, 4}, &rng).set_requires_grad(true);
  std::vector<float> bias = {0.0f, -1e9f, 0.0f};
  // Loss over the unmasked outputs only.
  Tensor out = att.Forward(x, &bias);
  Tensor keep = Rows(Reshape(out, {3, 4}), {0, 2});
  Mean(Square(keep)).Backward();
  // The masked position's value pathway receives (numerically) zero
  // attention weight; its gradient comes only from its own query/out path,
  // which we excluded — so position 1's grad must be ~0 through V.
  // (Query/key projections of pos 1 still matter via softmax normalization
  // of other rows? No: its key is -inf so its weight is exactly 0 and the
  // softmax gradient through it is 0.)
  const auto& g = x.grad_vec();
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_NEAR(g[static_cast<size_t>(1 * 4 + j)], 0.0f, 1e-6);
  }
}

}  // namespace
}  // namespace dot
