// Admin/introspection plane tests: raw-socket HTTP against a live
// AdminServer — endpoint routing, readiness flipping, Prometheus and JSON
// rendering (including hostile strings in the slow-query ring), and the
// bounded /tracez capture.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/ring.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "serve/admin.h"

namespace dot {
namespace serve {
namespace {

/// One-shot HTTP/1.0 exchange; returns the raw response (headers + body).
std::string HttpGet(int port, const std::string& target,
                    const std::string& method = "GET") {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::string req = method + " " + target + " HTTP/1.0\r\n\r\n";
  ::send(fd, req.data(), req.size(), MSG_NOSIGNAL);
  std::string resp;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fd, buf, sizeof(buf))) > 0) {
    resp.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return resp;
}

class AdminTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ring_.Push(MakeRecord());
    AdminHooks hooks;
    hooks.server_json = [] { return std::string("{\"requests\": 12}"); };
    hooks.slow_ring = &ring_;
    admin_ = std::make_unique<AdminServer>(AdminConfig{}, hooks);
    ASSERT_TRUE(admin_->Start().ok());
    ASSERT_GT(admin_->port(), 0);
  }

  static obs::SlowQueryRecord MakeRecord() {
    obs::SlowQueryRecord rec;
    rec.trace_id = 0xABCD;
    rec.request_id = 3;
    rec.latency_ms = 250.5;
    rec.note = "hostile \"note\"\nwith\tcontrols";
    return rec;
  }

  obs::SlowQueryRing ring_{8};
  std::unique_ptr<AdminServer> admin_;
};

TEST_F(AdminTest, HealthzAlwaysOk) {
  std::string resp = HttpGet(admin_->port(), "/healthz");
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("ok\n"), std::string::npos);
}

TEST_F(AdminTest, ReadyzFlipsWithDrainState) {
  std::string ready = HttpGet(admin_->port(), "/readyz");
  EXPECT_NE(ready.find("200 OK"), std::string::npos);
  EXPECT_NE(ready.find("ready"), std::string::npos);
  admin_->SetReady(false);
  std::string draining = HttpGet(admin_->port(), "/readyz");
  EXPECT_NE(draining.find("503"), std::string::npos);
  EXPECT_NE(draining.find("draining"), std::string::npos);
  admin_->SetReady(true);
  EXPECT_NE(HttpGet(admin_->port(), "/readyz").find("200 OK"),
            std::string::npos);
}

TEST_F(AdminTest, MetricsServesPrometheusText) {
  obs::MetricsRegistry::Get().GetCounter("test_admin_counter")->Increment();
  obs::MetricsRegistry::Get().GetWindow("test_admin_window")->Observe(5.0);
  std::string resp = HttpGet(admin_->port(), "/metrics");
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("# TYPE"), std::string::npos);
  EXPECT_NE(resp.find("test_admin_counter"), std::string::npos);
  EXPECT_NE(resp.find("test_admin_window_window_p95"), std::string::npos);
}

TEST_F(AdminTest, VarzCombinesRegistryAndServerSections) {
  std::string resp = HttpGet(admin_->port(), "/varz");
  EXPECT_NE(resp.find("application/json"), std::string::npos);
  EXPECT_NE(resp.find("\"metrics\""), std::string::npos);
  EXPECT_NE(resp.find("\"windows\""), std::string::npos);
  EXPECT_NE(resp.find("\"server\": {\"requests\": 12}"), std::string::npos);
  // Structural sanity on the body: balanced braces.
  size_t body = resp.find("\r\n\r\n");
  ASSERT_NE(body, std::string::npos);
  int depth = 0;
  for (size_t i = body; i < resp.size(); ++i) {
    if (resp[i] == '{') ++depth;
    if (resp[i] == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(AdminTest, SlowzDumpsTheRingWithEscaping) {
  std::string resp = HttpGet(admin_->port(), "/slowz");
  EXPECT_NE(resp.find("\"records\""), std::string::npos);
  EXPECT_NE(resp.find("hostile \\\"note\\\"\\nwith\\tcontrols"),
            std::string::npos);
  size_t body = resp.find("\r\n\r\n");
  ASSERT_NE(body, std::string::npos);
  for (size_t i = body + 4; i < resp.size(); ++i) {
    if (resp[i] == '\n') continue;  // structural formatting, not a leak
    EXPECT_GE(static_cast<unsigned char>(resp[i]), 0x20)
        << "raw control byte leaked into /slowz JSON";
  }
}

TEST_F(AdminTest, TracezCapturesABoundedTrace) {
  ASSERT_FALSE(obs::TracingEnabled());
  std::string resp = HttpGet(admin_->port(), "/tracez?sec=0");
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("\"traceEvents\""), std::string::npos);
  EXPECT_FALSE(obs::TracingEnabled()) << "/tracez must stop its recording";
}

TEST_F(AdminTest, TracezRejectsBadSecAndActiveRecordings) {
  EXPECT_NE(HttpGet(admin_->port(), "/tracez?sec=bogus").find("400"),
            std::string::npos);
  EXPECT_NE(HttpGet(admin_->port(), "/tracez?wrong=1").find("400"),
            std::string::npos);
  obs::StartTracing();
  EXPECT_NE(HttpGet(admin_->port(), "/tracez?sec=0").find("409"),
            std::string::npos);
  obs::StopTracing();
}

TEST_F(AdminTest, UnknownPathsAndMethodsAreRejected) {
  EXPECT_NE(HttpGet(admin_->port(), "/nope").find("404"), std::string::npos);
  EXPECT_NE(HttpGet(admin_->port(), "/healthz", "POST").find("405"),
            std::string::npos);
}

TEST_F(AdminTest, ShardzAndSwapzAre404WithoutShardHooks) {
  // The default fixture wires no shard hooks: the process runs unsharded.
  EXPECT_NE(HttpGet(admin_->port(), "/shardz").find("404"),
            std::string::npos);
  EXPECT_NE(HttpGet(admin_->port(), "/swapz", "POST").find("404"),
            std::string::npos);
}

TEST_F(AdminTest, ShardzRendersTheHookJson) {
  AdminHooks hooks;
  hooks.shardz_json = [] {
    return std::string("{\"shards\": [{\"id\": \"0\"}]}");
  };
  AdminServer admin{AdminConfig{}, hooks};
  ASSERT_TRUE(admin.Start().ok());
  std::string resp = HttpGet(admin.port(), "/shardz");
  EXPECT_NE(resp.find("200 OK"), std::string::npos);
  EXPECT_NE(resp.find("application/json"), std::string::npos);
  EXPECT_NE(resp.find("{\"shards\": [{\"id\": \"0\"}]}"), std::string::npos);
}

TEST_F(AdminTest, SwapzRequiresPostAndReportsTheSwapResult) {
  int swaps = 0;
  Status next = Status::OK();
  AdminHooks hooks;
  hooks.swap = [&swaps, &next] {
    ++swaps;
    return next;
  };
  AdminServer admin{AdminConfig{}, hooks};
  ASSERT_TRUE(admin.Start().ok());
  // A GET must not trigger the swap — it is the one mutating endpoint.
  std::string got = HttpGet(admin.port(), "/swapz");
  EXPECT_NE(got.find("405"), std::string::npos);
  EXPECT_EQ(swaps, 0);
  std::string ok = HttpGet(admin.port(), "/swapz", "POST");
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_NE(ok.find("swap ok"), std::string::npos);
  EXPECT_EQ(swaps, 1);
  next = Status::Internal("canary failed");
  std::string failed = HttpGet(admin.port(), "/swapz", "POST");
  EXPECT_NE(failed.find("500"), std::string::npos);
  EXPECT_NE(failed.find("canary failed"), std::string::npos);
  EXPECT_EQ(swaps, 2);
}

TEST_F(AdminTest, ShutdownIsIdempotentAndStopsServing) {
  int port = admin_->port();
  admin_->Shutdown();
  admin_->Shutdown();
  EXPECT_TRUE(HttpGet(port, "/healthz").empty());
}

}  // namespace
}  // namespace serve
}  // namespace dot
