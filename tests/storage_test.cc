// Tests for the pooled storage engine and the zero-copy view layer built on
// it: pool mechanics (bucketing, hit/miss accounting, poisoning), aliasing
// semantics of Reshape/Flatten/Detach/Slice, in-place op guards, Backward()
// diagnostics, and the steady-state allocation contract of the
// reverse-diffusion sampling loop.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/diffusion.h"
#include "core/unet.h"
#include "gradcheck.h"
#include "tensor/nn.h"
#include "tensor/ops.h"
#include "tensor/storage.h"
#include "tensor/tensor.h"

namespace dot {
namespace {

/// Restores the pool/poison knobs a test flips.
class PoolKnobGuard {
 public:
  PoolKnobGuard()
      : pool_(storage::PoolEnabled()), poison_(storage::PoisonEnabled()) {}
  ~PoolKnobGuard() {
    storage::SetPoolEnabled(pool_);
    storage::SetPoisonEnabled(poison_);
  }

 private:
  bool pool_, poison_;
};

// ---- Pool mechanics ---------------------------------------------------------

TEST(StoragePool, BucketForRoundsUpToPowerOfTwo) {
  EXPECT_EQ(storage::BucketFor(0), 64);
  EXPECT_EQ(storage::BucketFor(1), 64);
  EXPECT_EQ(storage::BucketFor(64), 64);
  EXPECT_EQ(storage::BucketFor(65), 128);
  EXPECT_EQ(storage::BucketFor(1000), 1024);
  EXPECT_EQ(storage::BucketFor(1 << 20), 1 << 20);
}

TEST(StoragePool, RecycleHitsFreeList) {
  PoolKnobGuard knobs;
  storage::SetPoolEnabled(true);
  storage::TrimPool();
  storage::ResetPoolStats();
  { Tensor t = Tensor::Zeros({100}); }  // miss: cold pool
  storage::PoolStats s1 = storage::GetPoolStats();
  EXPECT_EQ(s1.misses, 1);
  EXPECT_EQ(s1.returns, 1);
  { Tensor t = Tensor::Zeros({100}); }  // same bucket (128 floats): hit
  storage::PoolStats s2 = storage::GetPoolStats();
  EXPECT_EQ(s2.hits, 1);
  EXPECT_EQ(s2.misses, 1);
  EXPECT_EQ(s2.returns, 2);
}

TEST(StoragePool, LiveAndPooledByteAccounting) {
  PoolKnobGuard knobs;
  storage::SetPoolEnabled(true);
  storage::TrimPool();
  storage::ResetPoolStats();
  int64_t live0 = storage::GetPoolStats().bytes_live;
  int64_t pooled0 = storage::GetPoolStats().bytes_pooled;
  int64_t bucket_bytes = storage::BucketFor(100) * sizeof(float);
  {
    Tensor t = Tensor::Zeros({100});
    storage::PoolStats s = storage::GetPoolStats();
    EXPECT_EQ(s.bytes_live, live0 + bucket_bytes);
    EXPECT_GE(s.high_water_bytes, live0 + bucket_bytes);
  }
  storage::PoolStats s = storage::GetPoolStats();
  EXPECT_EQ(s.bytes_live, live0);
  EXPECT_EQ(s.bytes_pooled, pooled0 + bucket_bytes);
  storage::TrimPool();
  EXPECT_EQ(storage::GetPoolStats().bytes_pooled, pooled0);
}

TEST(StoragePool, DisabledPoolFreesEagerly) {
  PoolKnobGuard knobs;
  storage::SetPoolEnabled(false);
  storage::TrimPool();
  storage::ResetPoolStats();
  { Tensor t = Tensor::Zeros({100}); }
  { Tensor t = Tensor::Zeros({100}); }
  storage::PoolStats s = storage::GetPoolStats();
  // No pool traffic at all: buffers come from and go back to the heap.
  EXPECT_EQ(s.hits, 0);
  EXPECT_EQ(s.misses, 0);
  EXPECT_EQ(s.returns, 0);
  EXPECT_EQ(s.bytes_pooled, 0);
}

TEST(StoragePool, PoisonOnReturnFillsWithNaN) {
  PoolKnobGuard knobs;
  storage::SetPoolEnabled(true);
  storage::SetPoisonEnabled(true);
  storage::TrimPool();
  { Tensor t = Tensor::Full({8}, 3.0f); }
  // The recycled buffer (LIFO) backs this allocation; Empty must expose the
  // poison pattern, not the previous tensor's values.
  Tensor t = Tensor::Empty({8});
  for (int64_t i = 0; i < t.numel(); ++i) {
    EXPECT_TRUE(std::isnan(t.at(i))) << "element " << i << " not poisoned";
  }
}

// ---- Aliasing semantics -----------------------------------------------------

TEST(StorageViews, ReshapeIsZeroCopyBothDirections) {
  Tensor base = Tensor::Zeros({2, 3});
  Tensor view = Reshape(base, {3, 2});
  EXPECT_TRUE(view.SharesStorageWith(base));
  view.at(0) = 42.0f;   // write through the view...
  EXPECT_EQ(base.at(0), 42.0f);  // ...visible in the base
  base.at(5) = -1.0f;   // and vice versa
  EXPECT_EQ(view.at(5), -1.0f);
}

TEST(StorageViews, FlattenAndDetachShareStorage) {
  Tensor base = Tensor::Zeros({2, 2, 2});
  Tensor flat = Flatten(base);
  EXPECT_EQ(flat.dim(), 1);
  EXPECT_EQ(flat.numel(), 8);
  EXPECT_TRUE(flat.SharesStorageWith(base));
  Tensor det = base.Detach();
  EXPECT_TRUE(det.SharesStorageWith(base));
  EXPECT_EQ(det.grad_fn(), nullptr);
  det.at(3) = 7.0f;
  EXPECT_EQ(base.at(3), 7.0f);
}

TEST(StorageViews, SliceAxis0IsViewOtherAxesCopy) {
  Tensor base = Tensor::FromVector({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor row = Slice(base, 0, 1, 1);  // second row: zero-copy
  EXPECT_TRUE(row.SharesStorageWith(base));
  EXPECT_EQ(row.at(0), 3.0f);
  row.at(0) = 30.0f;
  EXPECT_EQ(base.at(3), 30.0f);
  Tensor col = Slice(base, 1, 0, 2);  // inner axis: materialized copy
  EXPECT_FALSE(col.SharesStorageWith(base));
  EXPECT_EQ(col.at(2), 30.0f);
}

TEST(StorageViews, CloneIsDeepCopy) {
  Tensor base = Tensor::Full({4}, 2.0f);
  Tensor copy = base.Clone();
  EXPECT_FALSE(copy.SharesStorageWith(base));
  copy.at(0) = 9.0f;
  EXPECT_EQ(base.at(0), 2.0f);
}

TEST(StorageViews, ViewOutOfBoundsDies) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Tensor base = Tensor::Zeros({4});
  EXPECT_DEATH(Tensor::View(base, {4}, 1), "View out of bounds");
}

// ---- Reshape -1 inference and validation ------------------------------------

TEST(ReshapeInference, InfersSingleNegativeDim) {
  Tensor a = Tensor::Zeros({2, 3, 4});
  EXPECT_EQ(Reshape(a, {-1}).shape(), (std::vector<int64_t>{24}));
  EXPECT_EQ(Reshape(a, {2, -1}).shape(), (std::vector<int64_t>{2, 12}));
  EXPECT_EQ(Reshape(a, {-1, 4}).shape(), (std::vector<int64_t>{6, 4}));
  EXPECT_EQ(Reshape(a, {2, -1, 2}).shape(), (std::vector<int64_t>{2, 6, 2}));
}

TEST(ReshapeInference, BadShapesDieWithBothShapesInMessage) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Tensor a = Tensor::Zeros({2, 3});
  EXPECT_DEATH(Reshape(a, {4, 2}), "\\[2, 3\\].*\\[4, 2\\]");
  EXPECT_DEATH(Reshape(a, {-1, -1}), "multiple -1 dims");
  EXPECT_DEATH(Reshape(a, {-1, 4}), "does not divide into");
  EXPECT_DEATH(Reshape(a, {2, -3}), "invalid dim");
}

// ---- Backward() diagnostics and NoGradGuard ---------------------------------

TEST(BackwardDiagnostics, NoGradTensorDiesWithClearMessage) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Tensor a = Tensor::Ones({3}).set_requires_grad(true);
  Tensor loss;
  {
    NoGradGuard guard;
    loss = Mean(Square(a));  // no graph recorded
  }
  EXPECT_DEATH(loss.Backward(), "NoGradGuard");
}

TEST(BackwardDiagnostics, NonScalarDiesWithShape) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Tensor a = Tensor::Ones({2, 3}).set_requires_grad(true);
  Tensor y = MulScalar(a, 2.0f);
  EXPECT_DEATH(y.Backward(), "scalar.*\\[2, 3\\]");
}

TEST(NoGradGuard, NestsAndRestores) {
  EXPECT_TRUE(GradModeEnabled());
  {
    NoGradGuard outer;
    EXPECT_FALSE(GradModeEnabled());
    {
      NoGradGuard inner;
      EXPECT_FALSE(GradModeEnabled());
    }
    // Inner exit must restore the outer guard's state, not re-enable.
    EXPECT_FALSE(GradModeEnabled());
  }
  EXPECT_TRUE(GradModeEnabled());
}

// ---- In-place ops -----------------------------------------------------------

TEST(InPlaceOps, MatchFunctionalOpsBitwise) {
  NoGradGuard guard;
  Rng rng(3);
  Tensor a = Tensor::Randn({2, 3, 4}, &rng);
  Tensor b = Tensor::Randn({2, 3, 4}, &rng);
  Tensor c = Tensor::Randn({3, 1}, &rng);  // broadcast over dims 0 and 2
  Tensor want_add = Add(a, b);
  Tensor want_bcast = Add(a, c);
  Tensor want_scale = MulScalar(a, 0.37f);

  Tensor t1 = a.Clone();
  AddInPlace_(t1, b);
  Tensor t2 = a.Clone();
  AddInPlace_(t2, c);
  Tensor t3 = a.Clone();
  Scale_(t3, 0.37f);
  for (int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_EQ(t1.at(i), want_add.at(i));
    EXPECT_EQ(t2.at(i), want_bcast.at(i));
    EXPECT_EQ(t3.at(i), want_scale.at(i));
  }
}

TEST(InPlaceOps, DieWhileAutogradRecords) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Tensor a = Tensor::Ones({3});
  Tensor b = Tensor::Ones({3});
  EXPECT_DEATH(AddInPlace_(a, b), "autograd is recording");
  EXPECT_DEATH(Scale_(a, 2.0f), "autograd is recording");
}

TEST(InPlaceOps, ShapeChangingBroadcastDies) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  NoGradGuard guard;
  Tensor a = Tensor::Ones({1, 3});
  Tensor b = Tensor::Ones({2, 3});
  EXPECT_DEATH(AddInPlace_(a, b), "change the target shape");
}

TEST(InPlaceOps, ReuseHelpersPickPathByGradMode) {
  // Recording: AddReuse must behave like Add (fresh output, graph attached).
  Tensor a = Tensor::Ones({3}).set_requires_grad(true);
  Tensor b = Tensor::Full({3}, 2.0f);
  Tensor out = AddReuse(a, b);
  EXPECT_FALSE(out.SharesStorageWith(a));
  ASSERT_NE(out.grad_fn(), nullptr);
  Mean(out).Backward();
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(a.grad_vec()[static_cast<size_t>(i)], 1.0f / 3.0f, 1e-6f);
  }
  // Inference: the input buffer is reused.
  NoGradGuard guard;
  Tensor c = Tensor::Ones({3});
  Tensor reused = AddReuse(c, b);
  EXPECT_TRUE(reused.SharesStorageWith(c));
  EXPECT_EQ(reused.at(0), 3.0f);
  Tensor scaled = ScaleReuse(c, 2.0f);
  EXPECT_TRUE(scaled.SharesStorageWith(c));
}

// ---- Gradchecks through the view layer under pooling ------------------------

TEST(ViewGradcheck, ReshapeSliceConcat) {
  PoolKnobGuard knobs;
  storage::SetPoolEnabled(true);
  Rng rng(11);
  Tensor a = Tensor::Randn({2, 6}, &rng);
  testing::ExpectGradientsMatch({a}, [](const std::vector<Tensor>& in) {
    return Mean(Square(Reshape(in[0], {3, -1})));
  });
  testing::ExpectGradientsMatch({a}, [](const std::vector<Tensor>& in) {
    // Axis-0 slice (zero-copy view) and axis-1 slice (copy path).
    Tensor s0 = Slice(in[0], 0, 1, 1);
    Tensor s1 = Slice(in[0], 1, 2, 3);
    return Add(Mean(Square(s0)), Mean(Square(s1)));
  });
  Tensor b = Tensor::Randn({2, 6}, &rng);
  testing::ExpectGradientsMatch({a, b}, [](const std::vector<Tensor>& in) {
    return Mean(Square(Concat({in[0], in[1]}, 0)));
  });
}

TEST(ViewGradcheck, ViewMutationVisibleThroughAutogradInputs) {
  // An op reading a view sees later writes to the base before forward runs —
  // the documented aliasing contract (views are live aliases, not snapshots).
  Tensor base = Tensor::Zeros({4});
  Tensor view = Reshape(base, {2, 2});
  base.Fill(2.0f);
  EXPECT_EQ(Sum(view).item(), 8.0f);
}

// ---- Steady-state allocation regression -------------------------------------

TEST(AllocationRegression, ReverseDiffusionIsAllocatorQuietAfterWarmup) {
  PoolKnobGuard knobs;
  storage::SetPoolEnabled(true);
  UnetConfig cfg;
  cfg.base_channels = 8;
  cfg.levels = 2;
  cfg.cond_dim = 16;
  cfg.max_steps = 6;
  Rng rng(5);
  UnetDenoiser unet(cfg, &rng);
  Diffusion diff{DiffusionSchedule(6)};
  Tensor cond = Tensor::Zeros({1, 5});

  {
    Rng warm_rng(6);
    Tensor warm = diff.Sample(unet, cond, {1, 3, 8, 8}, &warm_rng);
  }  // warmup pass populates every bucket's free list, then releases it all

  storage::ResetPoolStats();
  int64_t live0 = storage::GetPoolStats().bytes_live;
  for (int round = 0; round < 3; ++round) {
    Rng round_rng(7);
    Tensor x = diff.Sample(unet, cond, {1, 3, 8, 8}, &round_rng);
    EXPECT_EQ(x.numel(), 3 * 8 * 8);
  }
  storage::PoolStats s = storage::GetPoolStats();
  EXPECT_EQ(s.misses, 0) << "steady-state sampling touched the heap";
  EXPECT_GT(s.hits, 0);
  EXPECT_EQ(storage::GetPoolStats().bytes_live, live0)
      << "net live bytes grew across steady-state sampling rounds";
}

}  // namespace
}  // namespace dot
