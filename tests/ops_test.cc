// Forward-value and gradient-check tests for every differentiable op.

#include "tensor/ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "tensor/gemm_kernel.h"
#include "tensor/nn.h"
#include "tensor/tensor.h"

namespace dot {
namespace {

using dot::testing::ExpectGradientsMatch;

Tensor SmallRand(std::vector<int64_t> shape, uint64_t seed, float lo = -1.f,
                 float hi = 1.f) {
  Rng rng(seed);
  return Tensor::Rand(std::move(shape), &rng, lo, hi);
}

// ---- Forward values -----------------------------------------------------------

TEST(OpsForward, AddSubMulDiv) {
  Tensor a = Tensor::FromVector({3}, {1, 2, 3});
  Tensor b = Tensor::FromVector({3}, {4, 5, 6});
  EXPECT_FLOAT_EQ(Add(a, b).at(1), 7.0f);
  EXPECT_FLOAT_EQ(Sub(a, b).at(1), -3.0f);
  EXPECT_FLOAT_EQ(Mul(a, b).at(2), 18.0f);
  EXPECT_FLOAT_EQ(Div(b, a).at(2), 2.0f);
}

TEST(OpsForward, BroadcastBiasAdd) {
  Tensor x = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3}, {10, 20, 30});
  Tensor y = Add(x, b);
  EXPECT_FLOAT_EQ(y.at(0), 11.0f);
  EXPECT_FLOAT_EQ(y.at(5), 36.0f);
}

TEST(OpsForward, BroadcastScalarLike) {
  Tensor x = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor s = Tensor::FromVector({1}, {5});
  Tensor y = Mul(x, s);
  EXPECT_FLOAT_EQ(y.at(3), 20.0f);
}

TEST(OpsForward, BroadcastColumnAgainstRow) {
  Tensor col = Tensor::FromVector({3, 1}, {1, 2, 3});
  Tensor row = Tensor::FromVector({1, 4}, {10, 20, 30, 40});
  Tensor y = Add(col, row);  // outer sum, [3, 4]
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{3, 4}));
  EXPECT_FLOAT_EQ(y.at(0), 11.0f);
  EXPECT_FLOAT_EQ(y.at(11), 43.0f);
}

TEST(OpsForward, UnaryValues) {
  Tensor x = Tensor::FromVector({2}, {0.0f, 1.0f});
  EXPECT_FLOAT_EQ(Exp(x).at(1), std::exp(1.0f));
  EXPECT_FLOAT_EQ(Sigmoid(x).at(0), 0.5f);
  EXPECT_FLOAT_EQ(Tanh(x).at(0), 0.0f);
  EXPECT_FLOAT_EQ(Relu(Tensor::FromVector({2}, {-1, 2})).at(0), 0.0f);
  EXPECT_NEAR(Gelu(x).at(1), 0.8412f, 1e-3);
  EXPECT_FLOAT_EQ(Abs(Tensor::FromVector({1}, {-3})).at(0), 3.0f);
}

TEST(OpsForward, ReshapeInfersDim) {
  Tensor x = Tensor::Arange(12);
  Tensor y = Reshape(x, {3, -1});
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{3, 4}));
  EXPECT_FLOAT_EQ(y.at(11), 11.0f);
}

TEST(OpsForward, PermuteMatchesManualTranspose) {
  Tensor x = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor y = Transpose2D(x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{3, 2}));
  // y[i][j] == x[j][i]
  EXPECT_FLOAT_EQ(y.at(0 * 2 + 1), 4.0f);
  EXPECT_FLOAT_EQ(y.at(2 * 2 + 0), 3.0f);
}

TEST(OpsForward, Permute3D) {
  Tensor x = Tensor::Arange(24);
  x = Reshape(x, {2, 3, 4});
  Tensor y = Permute(x, {2, 0, 1});
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{4, 2, 3}));
  // y[k][i][j] = x[i][j][k]; check y[1][1][2] == x[1][2][1] = 1*12+2*4+1 = 21
  EXPECT_FLOAT_EQ(y.at((1 * 2 + 1) * 3 + 2), 21.0f);
}

TEST(OpsForward, ConcatAxis0And1) {
  Tensor a = Tensor::FromVector({1, 2}, {1, 2});
  Tensor b = Tensor::FromVector({1, 2}, {3, 4});
  Tensor c0 = Concat({a, b}, 0);
  EXPECT_EQ(c0.shape(), (std::vector<int64_t>{2, 2}));
  EXPECT_FLOAT_EQ(c0.at(3), 4.0f);
  Tensor c1 = Concat({a, b}, 1);
  EXPECT_EQ(c1.shape(), (std::vector<int64_t>{1, 4}));
  EXPECT_FLOAT_EQ(c1.at(2), 3.0f);
}

TEST(OpsForward, SliceMiddle) {
  Tensor x = Tensor::Arange(10);
  Tensor y = Slice(x, 0, 3, 4);
  EXPECT_EQ(y.numel(), 4);
  EXPECT_FLOAT_EQ(y.at(0), 3.0f);
  EXPECT_FLOAT_EQ(y.at(3), 6.0f);
}

TEST(OpsForward, SliceAlongLastAxis) {
  Tensor x = Reshape(Tensor::Arange(12), {3, 4});
  Tensor y = Slice(x, 1, 1, 2);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{3, 2}));
  EXPECT_FLOAT_EQ(y.at(0), 1.0f);
  EXPECT_FLOAT_EQ(y.at(5), 10.0f);
}

TEST(OpsForward, RowsGather) {
  Tensor table = Reshape(Tensor::Arange(6), {3, 2});
  Tensor y = Rows(table, {2, 0, 2});
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{3, 2}));
  EXPECT_FLOAT_EQ(y.at(0), 4.0f);
  EXPECT_FLOAT_EQ(y.at(2), 0.0f);
  EXPECT_FLOAT_EQ(y.at(5), 5.0f);
}

TEST(OpsForward, Reductions) {
  Tensor x = Reshape(Tensor::Arange(6), {2, 3});  // [[0,1,2],[3,4,5]]
  EXPECT_FLOAT_EQ(Sum(x).item(), 15.0f);
  EXPECT_FLOAT_EQ(Mean(x).item(), 2.5f);
  Tensor s0 = SumAxis(x, 0);
  EXPECT_EQ(s0.shape(), (std::vector<int64_t>{3}));
  EXPECT_FLOAT_EQ(s0.at(0), 3.0f);
  Tensor m1 = MeanAxis(x, 1);
  EXPECT_EQ(m1.shape(), (std::vector<int64_t>{2}));
  EXPECT_FLOAT_EQ(m1.at(1), 4.0f);
  Tensor k = SumAxis(x, 1, /*keepdim=*/true);
  EXPECT_EQ(k.shape(), (std::vector<int64_t>{2, 1}));
}

TEST(OpsForward, MatMulKnownValues) {
  Tensor a = Tensor::FromVector({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2}, {5, 6, 7, 8});
  Tensor c = MatMul(a, b);
  EXPECT_FLOAT_EQ(c.at(0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(2), 43.0f);
  EXPECT_FLOAT_EQ(c.at(3), 50.0f);
}

TEST(OpsForward, BatchMatMulIsPerBatch) {
  Tensor a = Tensor::FromVector({2, 1, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector({2, 2, 1}, {1, 1, 2, 2});
  Tensor c = BatchMatMul(a, b);
  EXPECT_EQ(c.shape(), (std::vector<int64_t>{2, 1, 1}));
  EXPECT_FLOAT_EQ(c.at(0), 3.0f);
  EXPECT_FLOAT_EQ(c.at(1), 14.0f);
}

TEST(OpsForward, SoftmaxRowsSumToOne) {
  Tensor x = SmallRand({4, 7}, 1);
  Tensor y = Softmax(x);
  for (int64_t r = 0; r < 4; ++r) {
    float sum = 0;
    for (int64_t i = 0; i < 7; ++i) {
      float v = y.at(r * 7 + i);
      EXPECT_GT(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(OpsForward, SoftmaxStableForLargeInputs) {
  Tensor x = Tensor::FromVector({1, 2}, {1000.0f, 1001.0f});
  Tensor y = Softmax(x);
  EXPECT_NEAR(y.at(0) + y.at(1), 1.0f, 1e-5);
  EXPECT_GT(y.at(1), y.at(0));
}

TEST(OpsForward, LayerNormNormalizes) {
  Tensor x = SmallRand({3, 8}, 2, -5, 5);
  Tensor gamma = Tensor::Ones({8});
  Tensor beta = Tensor::Zeros({8});
  Tensor y = LayerNormOp(x, gamma, beta);
  for (int64_t r = 0; r < 3; ++r) {
    float mean = 0, var = 0;
    for (int64_t i = 0; i < 8; ++i) mean += y.at(r * 8 + i);
    mean /= 8;
    for (int64_t i = 0; i < 8; ++i) {
      float d = y.at(r * 8 + i) - mean;
      var += d * d;
    }
    var /= 8;
    EXPECT_NEAR(mean, 0.0f, 1e-4);
    EXPECT_NEAR(var, 1.0f, 1e-2);
  }
}

TEST(OpsForward, GroupNormNormalizesPerGroup) {
  Tensor x = SmallRand({2, 4, 3, 3}, 3, -4, 4);
  Tensor gamma = Tensor::Ones({4});
  Tensor beta = Tensor::Zeros({4});
  Tensor y = GroupNormOp(x, gamma, beta, /*groups=*/2);
  // Each (sample, group) slab should be ~standardized.
  for (int64_t s = 0; s < 2; ++s) {
    for (int64_t g = 0; g < 2; ++g) {
      float mean = 0;
      int64_t base = (s * 4 + g * 2) * 9;
      for (int64_t i = 0; i < 18; ++i) mean += y.at(base + i);
      mean /= 18;
      EXPECT_NEAR(mean, 0.0f, 1e-4);
    }
  }
}

TEST(OpsForward, Conv2dIdentityKernel) {
  // 1x1 kernel with weight 1 reproduces the input.
  Tensor x = SmallRand({1, 1, 4, 4}, 4);
  Tensor w = Tensor::Ones({1, 1, 1, 1});
  Tensor y = Conv2d(x, w, Tensor(), 1, 0);
  for (int64_t i = 0; i < 16; ++i) EXPECT_FLOAT_EQ(y.at(i), x.at(i));
}

TEST(OpsForward, Conv2dSumKernelWithPadding) {
  Tensor x = Tensor::Ones({1, 1, 3, 3});
  Tensor w = Tensor::Ones({1, 1, 3, 3});
  Tensor y = Conv2d(x, w, Tensor(), 1, 1);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{1, 1, 3, 3}));
  EXPECT_FLOAT_EQ(y.at(4), 9.0f);  // center sees all 9 ones
  EXPECT_FLOAT_EQ(y.at(0), 4.0f);  // corner sees 4
}

TEST(OpsForward, Conv2dStrideHalvesResolution) {
  Tensor x = Tensor::Ones({2, 3, 8, 8});
  Rng rng(5);
  Tensor w = Tensor::Randn({4, 3, 3, 3}, &rng);
  Tensor y = Conv2d(x, w, Tensor(), 2, 1);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 4, 4, 4}));
}

TEST(OpsForward, Conv2dBiasApplied) {
  Tensor x = Tensor::Zeros({1, 1, 2, 2});
  Tensor w = Tensor::Ones({2, 1, 1, 1});
  Tensor b = Tensor::FromVector({2}, {1.5f, -2.0f});
  Tensor y = Conv2d(x, w, b, 1, 0);
  EXPECT_FLOAT_EQ(y.at(0), 1.5f);
  EXPECT_FLOAT_EQ(y.at(4), -2.0f);
}

TEST(OpsForward, AvgPoolAndUpsample) {
  Tensor x = Tensor::FromVector({1, 1, 2, 2}, {1, 2, 3, 4});
  Tensor p = AvgPool2d(x);
  EXPECT_EQ(p.numel(), 1);
  EXPECT_FLOAT_EQ(p.at(0), 2.5f);
  Tensor u = UpsampleNearest2x(p);
  EXPECT_EQ(u.shape(), (std::vector<int64_t>{1, 1, 2, 2}));
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(u.at(i), 2.5f);
}

TEST(OpsForward, MseLossValue) {
  Tensor a = Tensor::FromVector({2}, {1, 2});
  Tensor b = Tensor::FromVector({2}, {3, 2});
  EXPECT_FLOAT_EQ(MseLoss(a, b).item(), 2.0f);  // (4 + 0) / 2
}

// ---- Gradient checks ------------------------------------------------------------

TEST(OpsGrad, BinaryOpsSameShape) {
  auto a = SmallRand({2, 3}, 10);
  auto b = SmallRand({2, 3}, 11, 0.5f, 2.0f);
  ExpectGradientsMatch({a, b}, [](const std::vector<Tensor>& in) {
    return Sum(Mul(Add(in[0], in[1]), Sub(in[0], in[1])));
  });
  ExpectGradientsMatch({a, b}, [](const std::vector<Tensor>& in) {
    return Sum(Div(in[0], in[1]));
  });
}

TEST(OpsGrad, BroadcastGradReducesCorrectly) {
  auto x = SmallRand({2, 3}, 12);
  auto b = SmallRand({3}, 13);
  ExpectGradientsMatch({x, b}, [](const std::vector<Tensor>& in) {
    return Sum(Mul(in[0], in[1]));
  });
  auto col = SmallRand({3, 1}, 14);
  auto row = SmallRand({1, 4}, 15);
  ExpectGradientsMatch({col, row}, [](const std::vector<Tensor>& in) {
    return Sum(Square(Add(in[0], in[1])));
  });
}

TEST(OpsGrad, UnaryChain) {
  auto x = SmallRand({6}, 16, 0.2f, 1.5f);
  ExpectGradientsMatch({x}, [](const std::vector<Tensor>& in) {
    return Sum(Log(AddScalar(Square(in[0]), 1.0f)));
  });
  ExpectGradientsMatch({x}, [](const std::vector<Tensor>& in) {
    return Sum(Mul(Sigmoid(in[0]), Tanh(in[0])));
  });
  ExpectGradientsMatch({x}, [](const std::vector<Tensor>& in) {
    return Sum(Gelu(in[0]));
  });
  ExpectGradientsMatch({x}, [](const std::vector<Tensor>& in) {
    return Sum(Silu(in[0]));
  });
  ExpectGradientsMatch({x}, [](const std::vector<Tensor>& in) {
    return Sum(Sqrt(AddScalar(in[0], 2.0f)));
  });
  ExpectGradientsMatch({x}, [](const std::vector<Tensor>& in) {
    return Sum(Exp(MulScalar(in[0], 0.5f)));
  });
}

TEST(OpsGrad, ShapeOps) {
  auto x = SmallRand({2, 6}, 17);
  ExpectGradientsMatch({x}, [](const std::vector<Tensor>& in) {
    return Sum(Square(Reshape(in[0], {3, 4})));
  });
  ExpectGradientsMatch({x}, [](const std::vector<Tensor>& in) {
    return Sum(Square(Transpose2D(in[0])));
  });
  auto y = SmallRand({2, 3, 4}, 18);
  ExpectGradientsMatch({y}, [](const std::vector<Tensor>& in) {
    return Sum(Square(Permute(in[0], {2, 0, 1})));
  });
}

TEST(OpsGrad, ConcatSliceRows) {
  auto a = SmallRand({2, 3}, 19);
  auto b = SmallRand({2, 3}, 20);
  ExpectGradientsMatch({a, b}, [](const std::vector<Tensor>& in) {
    return Sum(Square(Concat({in[0], in[1]}, 0)));
  });
  ExpectGradientsMatch({a, b}, [](const std::vector<Tensor>& in) {
    return Sum(Square(Concat({in[0], in[1]}, 1)));
  });
  auto x = SmallRand({5, 4}, 21);
  ExpectGradientsMatch({x}, [](const std::vector<Tensor>& in) {
    return Sum(Square(Slice(in[0], 0, 1, 3)));
  });
  ExpectGradientsMatch({x}, [](const std::vector<Tensor>& in) {
    return Sum(Square(Slice(in[0], 1, 1, 2)));
  });
  ExpectGradientsMatch({x}, [](const std::vector<Tensor>& in) {
    return Sum(Square(Rows(in[0], {0, 2, 2, 4})));
  });
}

TEST(OpsGrad, Reductions) {
  auto x = SmallRand({3, 4}, 22);
  ExpectGradientsMatch({x}, [](const std::vector<Tensor>& in) {
    return Mean(Square(in[0]));
  });
  ExpectGradientsMatch({x}, [](const std::vector<Tensor>& in) {
    return Sum(Square(SumAxis(in[0], 0)));
  });
  ExpectGradientsMatch({x}, [](const std::vector<Tensor>& in) {
    return Sum(Square(MeanAxis(in[0], 1)));
  });
}

TEST(OpsGrad, MatMul) {
  auto a = SmallRand({3, 4}, 23);
  auto b = SmallRand({4, 2}, 24);
  ExpectGradientsMatch({a, b}, [](const std::vector<Tensor>& in) {
    return Sum(Square(MatMul(in[0], in[1])));
  });
}

TEST(OpsGrad, BatchMatMul) {
  auto a = SmallRand({2, 3, 4}, 25);
  auto b = SmallRand({2, 4, 2}, 26);
  ExpectGradientsMatch({a, b}, [](const std::vector<Tensor>& in) {
    return Sum(Square(BatchMatMul(in[0], in[1])));
  });
}

TEST(OpsGrad, Softmax) {
  auto x = SmallRand({2, 5}, 27);
  auto w = SmallRand({2, 5}, 28);  // weights to make loss non-trivial
  ExpectGradientsMatch({x, w}, [](const std::vector<Tensor>& in) {
    return Sum(Mul(Softmax(in[0]), Square(in[1])));
  });
}

TEST(OpsGrad, LayerNorm) {
  auto x = SmallRand({3, 6}, 29, -2, 2);
  auto g = SmallRand({6}, 30, 0.5f, 1.5f);
  auto b = SmallRand({6}, 31);
  ExpectGradientsMatch(
      {x, g, b},
      [](const std::vector<Tensor>& in) {
        return Sum(Square(LayerNormOp(in[0], in[1], in[2])));
      },
      /*h=*/1e-2f, /*rtol=*/8e-2f, /*atol=*/2e-3f);
}

TEST(OpsGrad, GroupNorm) {
  auto x = SmallRand({2, 4, 2, 2}, 32, -2, 2);
  auto g = SmallRand({4}, 33, 0.5f, 1.5f);
  auto b = SmallRand({4}, 34);
  ExpectGradientsMatch(
      {x, g, b},
      [](const std::vector<Tensor>& in) {
        return Sum(Square(GroupNormOp(in[0], in[1], in[2], 2)));
      },
      /*h=*/1e-2f, /*rtol=*/8e-2f, /*atol=*/2e-3f);
}

TEST(OpsGrad, Conv2dFull) {
  auto x = SmallRand({2, 2, 5, 5}, 35);
  auto w = SmallRand({3, 2, 3, 3}, 36);
  auto b = SmallRand({3}, 37);
  ExpectGradientsMatch(
      {x, w, b},
      [](const std::vector<Tensor>& in) {
        return Mean(Square(Conv2d(in[0], in[1], in[2], 1, 1)));
      },
      /*h=*/1e-2f, /*rtol=*/8e-2f, /*atol=*/2e-3f);
}

TEST(OpsGrad, Conv2dStride2NoBias) {
  auto x = SmallRand({1, 2, 6, 6}, 38);
  auto w = SmallRand({2, 2, 3, 3}, 39);
  ExpectGradientsMatch(
      {x, w},
      [](const std::vector<Tensor>& in) {
        return Mean(Square(Conv2d(in[0], in[1], Tensor(), 2, 1)));
      },
      /*h=*/1e-2f, /*rtol=*/8e-2f, /*atol=*/2e-3f);
}

// The stride/padding variants below gradient-check the parallel im2col /
// col2im partitioning across the index arithmetic it has to get right:
// strided output stepping, padding clamps, 1x1 kernels (row_stride indexing
// without spatial offsets) and rectangular inputs (h != w).

TEST(OpsGrad, Conv2dStride2PaddedWithBias) {
  auto x = SmallRand({2, 2, 5, 5}, 50);
  auto w = SmallRand({3, 2, 3, 3}, 51);
  auto b = SmallRand({3}, 52);
  ExpectGradientsMatch(
      {x, w, b},
      [](const std::vector<Tensor>& in) {
        return Mean(Square(Conv2d(in[0], in[1], in[2], 2, 1)));
      },
      /*h=*/1e-2f, /*rtol=*/8e-2f, /*atol=*/2e-3f);
}

TEST(OpsGrad, Conv2dOneByOneKernel) {
  auto x = SmallRand({2, 3, 4, 4}, 53);
  auto w = SmallRand({2, 3, 1, 1}, 54);
  ExpectGradientsMatch(
      {x, w},
      [](const std::vector<Tensor>& in) {
        return Mean(Square(Conv2d(in[0], in[1], Tensor(), 1, 0)));
      },
      /*h=*/1e-2f, /*rtol=*/8e-2f, /*atol=*/2e-3f);
}

TEST(OpsGrad, Conv2dWidePadding) {
  // Padding of 2 with a 3x3 kernel: output larger than input, boundary
  // rows/cols read entirely from the zero pad.
  auto x = SmallRand({1, 2, 4, 4}, 55);
  auto w = SmallRand({2, 2, 3, 3}, 56);
  ExpectGradientsMatch(
      {x, w},
      [](const std::vector<Tensor>& in) {
        return Mean(Square(Conv2d(in[0], in[1], Tensor(), 1, 2)));
      },
      /*h=*/1e-2f, /*rtol=*/8e-2f, /*atol=*/2e-3f);
}

TEST(OpsGrad, Conv2dRectangularInput) {
  auto x = SmallRand({2, 2, 4, 6}, 57);
  auto w = SmallRand({2, 2, 3, 3}, 58);
  auto b = SmallRand({2}, 59);
  ExpectGradientsMatch(
      {x, w, b},
      [](const std::vector<Tensor>& in) {
        return Mean(Square(Conv2d(in[0], in[1], in[2], 1, 1)));
      },
      /*h=*/1e-2f, /*rtol=*/8e-2f, /*atol=*/2e-3f);
}

TEST(OpsGrad, GroupNormSingleGroup) {
  auto x = SmallRand({2, 4, 2, 2}, 60, -2, 2);
  auto g = SmallRand({4}, 61, 0.5f, 1.5f);
  auto b = SmallRand({4}, 62);
  ExpectGradientsMatch(
      {x, g, b},
      [](const std::vector<Tensor>& in) {
        return Sum(Square(GroupNormOp(in[0], in[1], in[2], 1)));
      },
      /*h=*/1e-2f, /*rtol=*/8e-2f, /*atol=*/2e-3f);
}

TEST(OpsGrad, GroupNormPerChannelGroups) {
  // groups == channels (instance-norm limit): per-channel statistics.
  auto x = SmallRand({2, 4, 3, 3}, 63, -2, 2);
  auto g = SmallRand({4}, 64, 0.5f, 1.5f);
  auto b = SmallRand({4}, 65);
  ExpectGradientsMatch(
      {x, g, b},
      [](const std::vector<Tensor>& in) {
        return Sum(Square(GroupNormOp(in[0], in[1], in[2], 4)));
      },
      /*h=*/1e-2f, /*rtol=*/8e-2f, /*atol=*/2e-3f);
}

TEST(OpsGrad, PoolingAndUpsample) {
  auto x = SmallRand({1, 2, 4, 4}, 40);
  ExpectGradientsMatch({x}, [](const std::vector<Tensor>& in) {
    return Sum(Square(AvgPool2d(in[0])));
  });
  ExpectGradientsMatch({x}, [](const std::vector<Tensor>& in) {
    return Sum(Square(UpsampleNearest2x(in[0])));
  });
}

TEST(OpsGrad, MseLoss) {
  auto p = SmallRand({4}, 41);
  auto t = SmallRand({4}, 42);
  ExpectGradientsMatch({p, t}, [](const std::vector<Tensor>& in) {
    return MseLoss(in[0], in[1]);
  });
}

// ---- Gradchecks under the blocked / SIMD GEMM kernels -------------------------
// The gradchecks above run under the process default kernel; these pin the
// blocked and SIMD engines explicitly so autograd is validated against the
// packed/tiled path, not just the naive oracle.

class ScopedGemmKernel {
 public:
  explicit ScopedGemmKernel(gemm::Kernel kernel)
      : prev_(gemm::ActiveKernel()) {
    gemm::SetKernel(kernel);
  }
  ~ScopedGemmKernel() { gemm::SetKernel(prev_); }

 private:
  gemm::Kernel prev_;
};

class KernelMatrixGrad : public ::testing::TestWithParam<gemm::Kernel> {
 protected:
  void SetUp() override {
    if (GetParam() == gemm::Kernel::kSimd && !gemm::SimdAvailable()) {
      GTEST_SKIP() << "SIMD microkernel unavailable on this CPU/build";
    }
  }
};

TEST_P(KernelMatrixGrad, Conv2d) {
  ScopedGemmKernel scoped(GetParam());
  auto x = SmallRand({2, 2, 5, 5}, 80);
  auto w = SmallRand({3, 2, 3, 3}, 81);
  auto b = SmallRand({3}, 82);
  ExpectGradientsMatch(
      {x, w, b},
      [](const std::vector<Tensor>& in) {
        return Mean(Square(Conv2d(in[0], in[1], in[2], 1, 1)));
      },
      /*h=*/1e-2f, /*rtol=*/8e-2f, /*atol=*/2e-3f);
}

TEST_P(KernelMatrixGrad, LinearMatMulBias) {
  ScopedGemmKernel scoped(GetParam());
  // A Linear layer body: x @ w + b. k=17 spans microkernel edge handling.
  auto x = SmallRand({6, 17}, 83);
  auto w = SmallRand({17, 9}, 84);
  auto b = SmallRand({9}, 85);
  ExpectGradientsMatch({x, w, b}, [](const std::vector<Tensor>& in) {
    return Mean(Square(Add(MatMul(in[0], in[1]), in[2])));
  });
}

TEST_P(KernelMatrixGrad, Attention) {
  ScopedGemmKernel scoped(GetParam());
  Rng rng(86);
  nn::MultiheadAttention att(8, 2, &rng);
  auto x = SmallRand({2, 4, 8}, 87);
  ExpectGradientsMatch(
      {x},
      [&att](const std::vector<Tensor>& in) {
        return Mean(Square(att.Forward(in[0])));
      },
      /*h=*/1e-2f, /*rtol=*/8e-2f, /*atol=*/2e-3f);
}

INSTANTIATE_TEST_SUITE_P(BlockedAndSimd, KernelMatrixGrad,
                         ::testing::Values(gemm::Kernel::kBlocked,
                                           gemm::Kernel::kSimd),
                         [](const auto& info) {
                           return std::string(gemm::KernelName(info.param));
                         });

}  // namespace
}  // namespace dot
