// Cross-boundary trace stitching: a sampled request must render as ONE
// connected tree — request root -> queue_wait / wave -> oracle spans —
// even though the root opens on the IO thread, the queue wait is
// reconstructed at wave formation, and the backend runs on the batcher
// thread (and fans into the thread pool). Tested twice: deterministically
// against a stub backend under manual pump, and end to end through a real
// socket server over a trained oracle.

#include <chrono>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/oracle_service.h"
#include "obs/trace.h"
#include "serve/batcher.h"
#include "serve/client.h"
#include "serve/server.h"

namespace dot {
namespace serve {
namespace {

/// True when `id` transitively reaches `root` via parent links.
bool ReachesRoot(const std::map<uint64_t, uint64_t>& parent_of, uint64_t id,
                 uint64_t root) {
  int hops = 0;
  while (id != 0 && hops++ < 64) {
    if (id == root) return true;
    auto it = parent_of.find(id);
    if (it == parent_of.end()) return false;
    id = it->second;
  }
  return false;
}

std::map<uint64_t, uint64_t> ParentMap(
    const std::vector<obs::TraceEvent>& events) {
  std::map<uint64_t, uint64_t> parent_of;
  for (const auto& e : events) parent_of[e.id] = e.parent_id;
  return parent_of;
}

const obs::TraceEvent* FindSpan(const std::vector<obs::TraceEvent>& events,
                                const std::string& name) {
  for (const auto& e : events) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

OdtInput MakeOdt(int i) {
  OdtInput odt;
  odt.origin = {104.0 + i * 1e-3, 30.6};
  odt.destination = {104.05, 30.65 + i * 1e-3};
  odt.departure_time = 1541060400 + i * 60;
  return odt;
}

TEST(BatcherTraceTest, WaveSpansStitchUnderEveryTracedMemberRoot) {
  double fake_ms = 0;
  BatcherConfig config;
  config.max_batch = 4;
  config.max_wave_age_ms = 10.0;
  config.queue_capacity = 8;
  config.queue_budget_ms = 1000.0;
  config.now_ms = [&fake_ms] { return fake_ms; };
  config.manual_pump = true;
  // Backend stands in for OracleService::QueryBatch: opens a span the way
  // the real one does, which must inherit the wave's parent.
  DynamicBatcher batcher(
      [](const std::vector<OdtInput>& odts,
         const QueryOptions& opts) -> Result<std::vector<DotEstimate>> {
        obs::TraceSpan span("QueryBatch");
        if (opts.timing != nullptr) {
          opts.timing->stage1_us = 1000;
          opts.timing->stage2_us = 200;
        }
        return std::vector<DotEstimate>(odts.size());
      },
      config);

  obs::StartTracing();
  // Two traced members (distinct roots) + one untraced member in one wave.
  std::vector<uint64_t> roots = {obs::NewSpanId(), obs::NewSpanId(), 0};
  std::vector<int64_t> starts(3, 0);
  std::vector<RequestTiming> timings(3);
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    RequestContext ctx;
    ctx.trace_id = 100 + static_cast<uint64_t>(i);
    ctx.root_span = roots[i];
    starts[i] = obs::TraceNowUs();
    ASSERT_TRUE(batcher
                    .Submit(MakeOdt(i), 0, ctx,
                            [&, i](const Result<DotEstimate>& r,
                                   const RequestTiming& t) {
                              EXPECT_TRUE(r.ok());
                              timings[i] = t;
                              ++done;
                            })
                    .ok());
  }
  fake_ms += 3.0;  // queue wait visible in RequestTiming::queue_us
  EXPECT_EQ(batcher.PumpOnce(/*force=*/true), 3);
  EXPECT_EQ(done, 3);
  // Close the per-request roots the way the server does.
  for (int i = 0; i < 2; ++i) {
    obs::RecordSpan("request", roots[i], 0, starts[i],
                    obs::TraceNowUs() - starts[i]);
  }
  std::vector<obs::TraceEvent> events = obs::StopTracing();

  std::map<uint64_t, uint64_t> parent_of = ParentMap(events);
  int queue_waits = 0;
  bool wave_seen = false, backend_seen = false;
  for (const auto& e : events) {
    if (e.name == "queue_wait") {
      ++queue_waits;
      // Each queue_wait hangs under its own request's root.
      EXPECT_TRUE(e.parent_id == roots[0] || e.parent_id == roots[1]);
    } else if (e.name == "wave") {
      wave_seen = true;
      // The wave is parented to the first traced member.
      EXPECT_EQ(e.parent_id, roots[0]);
    } else if (e.name == "QueryBatch") {
      backend_seen = true;
      EXPECT_TRUE(ReachesRoot(parent_of, e.id, roots[0]))
          << "backend span must descend from the owning request root";
    }
  }
  EXPECT_EQ(queue_waits, 2);  // the untraced member records nothing
  EXPECT_TRUE(wave_seen);
  EXPECT_TRUE(backend_seen);
  // Every span recorded during the wave is reachable from a request root.
  for (const auto& e : events) {
    if (e.name == "request") continue;
    EXPECT_TRUE(ReachesRoot(parent_of, e.id, roots[0]) ||
                ReachesRoot(parent_of, e.id, roots[1]))
        << "orphaned span: " << e.name;
  }
  // Timing plumbing: the stub's stage costs and the fake-clock queue wait
  // arrive in every member's RequestTiming.
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(timings[i].stage1_us, 1000.0);
    EXPECT_DOUBLE_EQ(timings[i].stage2_us, 200.0);
    EXPECT_DOUBLE_EQ(timings[i].queue_us, 3000.0);
    EXPECT_GE(timings[i].batch_wait_us, 0.0);
  }
}

// --- End to end over a real oracle and a real socket ----------------------

class ServeTraceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CityConfig cc = CityConfig::ChengduLike();
    cc.grid_nodes = 8;
    cc.spacing_meters = 1300;
    city_ = new City(cc, 4);
    TripConfig tc = TripConfig::ChengduLike();
    tc.num_trips = 200;
    dataset_ = new BenchmarkDataset(BuildDataset(*city_, tc, 17, "trace"));
    grid_ = new Grid(dataset_->MakeGrid(8).ValueOrDie());
    config_ = new DotConfig();
    config_->grid_size = 8;
    config_->diffusion_steps = 20;
    config_->sample_steps = 4;
    config_->unet.base_channels = 8;
    config_->unet.levels = 2;
    config_->unet.cond_dim = 32;
    config_->estimator.embed_dim = 32;
    config_->estimator.layers = 1;
    config_->stage1_epochs = 1;
    config_->stage2_epochs = 1;
    config_->val_samples = 0;
    config_->stage2_inferred_fraction = 0.0;
    oracle_ = new DotOracle(*config_, *grid_);
    ASSERT_TRUE(oracle_->TrainStage1(dataset_->split.train).ok());
    ASSERT_TRUE(
        oracle_->TrainStage2(dataset_->split.train, dataset_->split.val).ok());
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete config_;
    delete grid_;
    delete dataset_;
    delete city_;
    oracle_ = nullptr;
    config_ = nullptr;
    grid_ = nullptr;
    dataset_ = nullptr;
    city_ = nullptr;
  }

  static City* city_;
  static BenchmarkDataset* dataset_;
  static Grid* grid_;
  static DotConfig* config_;
  static DotOracle* oracle_;
};

City* ServeTraceFixture::city_ = nullptr;
BenchmarkDataset* ServeTraceFixture::dataset_ = nullptr;
Grid* ServeTraceFixture::grid_ = nullptr;
DotConfig* ServeTraceFixture::config_ = nullptr;
DotOracle* ServeTraceFixture::oracle_ = nullptr;

TEST_F(ServeTraceFixture, SampledLoopbackQueryYieldsOneConnectedTree) {
  OracleService service(oracle_);
  ServerConfig config;
  config.batcher.max_wave_age_ms = 1.0;
  Server server(OracleBackend(&service), config);
  ASSERT_TRUE(server.Start().ok());

  obs::StartTracing();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  uint64_t trace_id = Client::NewTraceId();
  Result<QueryResponse> resp =
      client.Call(/*id=*/1, dataset_->split.test[0].odt, /*deadline_ms=*/0,
                  /*timeout_ms=*/60000, trace_id,
                  kQueryFlagSampled | kQueryFlagWantBreakdown);
  ASSERT_TRUE(resp.ok()) << resp.status();
  EXPECT_EQ(resp->code, 0) << resp->message;
  ASSERT_TRUE(resp->has_breakdown);
  EXPECT_GT(resp->breakdown.stage1_us, 0.0);  // fresh cache: a miss serve
  EXPECT_GT(resp->breakdown.stage2_us, 0.0);
  EXPECT_GE(resp->breakdown.queue_us, 0.0);
  EXPECT_GE(resp->breakdown.batch_wait_us, 0.0);

  // The root span is recorded on the batcher callback after the response
  // is queued, so the client can hold the answer before the span lands.
  bool root_recorded = false;
  for (int i = 0; i < 200 && !root_recorded; ++i) {
    for (const auto& e : obs::TraceEvents()) {
      if (e.name == "request") root_recorded = true;
    }
    if (!root_recorded) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  std::vector<obs::TraceEvent> events = obs::StopTracing();
  server.Shutdown();
  ASSERT_TRUE(root_recorded) << "request root span never recorded";

  const obs::TraceEvent* root = FindSpan(events, "request");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent_id, 0u);
  EXPECT_NE(root->args.find(std::to_string(trace_id)), std::string::npos)
      << "root span args must carry the wire trace id";

  std::map<uint64_t, uint64_t> parent_of = ParentMap(events);
  for (const char* name :
       {"queue_wait", "wave", "OracleService::QueryBatch",
        "DotOracle::InferPits", "DotOracle::EstimateFromPits"}) {
    const obs::TraceEvent* span = FindSpan(events, name);
    ASSERT_NE(span, nullptr) << "missing span " << name;
    EXPECT_TRUE(ReachesRoot(parent_of, span->id, root->id))
        << name << " is not connected to the request root";
  }
}

}  // namespace
}  // namespace serve
}  // namespace dot
