// Integration tests for the two-stage DOT oracle on a tiny simulated city.
// These verify the training/inference plumbing, checkpointing, stage-1
// sharing, and the conditioning ablation switches; accuracy at paper scale
// is exercised by the bench binaries.

#include "core/dot_oracle.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "eval/metrics.h"

namespace dot {
namespace {

DotConfig TinyConfig() {
  DotConfig cfg;
  cfg.grid_size = 10;
  cfg.diffusion_steps = 50;
  cfg.sample_steps = 8;
  cfg.unet.base_channels = 8;
  cfg.unet.levels = 2;
  cfg.unet.cond_dim = 32;
  cfg.estimator.embed_dim = 32;
  cfg.estimator.layers = 1;
  cfg.stage1_epochs = 2;
  cfg.stage2_epochs = 3;
  cfg.batch_size = 16;
  cfg.val_samples = 16;
  // Keep the per-test fixture setup cheap: gtest runs each TEST_F in its
  // own process, so SetUpTestSuite re-runs per test.
  cfg.stage2_inferred_fraction = 0.0;
  return cfg;
}

class DotOracleFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CityConfig cc = CityConfig::ChengduLike();
    cc.grid_nodes = 8;
    cc.spacing_meters = 1300;
    city_ = new City(cc, 3);
    TripConfig tc = TripConfig::ChengduLike();
    tc.num_trips = 420;
    dataset_ = new BenchmarkDataset(BuildDataset(*city_, tc, 9, "tiny"));
    grid_ = new Grid(dataset_->MakeGrid(10).ValueOrDie());
    oracle_ = new DotOracle(TinyConfig(), *grid_);
    ASSERT_TRUE(oracle_->TrainStage1(dataset_->split.train).ok());
    ASSERT_TRUE(
        oracle_->TrainStage2(dataset_->split.train, dataset_->split.val).ok());
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete grid_;
    delete dataset_;
    delete city_;
    oracle_ = nullptr;
    grid_ = nullptr;
    dataset_ = nullptr;
    city_ = nullptr;
  }

  static City* city_;
  static BenchmarkDataset* dataset_;
  static Grid* grid_;
  static DotOracle* oracle_;
};

City* DotOracleFixture::city_ = nullptr;
BenchmarkDataset* DotOracleFixture::dataset_ = nullptr;
Grid* DotOracleFixture::grid_ = nullptr;
DotOracle* DotOracleFixture::oracle_ = nullptr;

TEST_F(DotOracleFixture, TrainingReducesNoiseLoss) {
  // After two epochs the noise MSE must be well below the untrained level
  // (predicting zero gives MSE ~1 on standard-normal noise).
  EXPECT_LT(oracle_->last_stage1_loss(), 0.8);
}

TEST_F(DotOracleFixture, EstimateReturnsFiniteSensibleValues) {
  for (size_t i = 0; i < 5; ++i) {
    Result<DotEstimate> est = oracle_->Estimate(dataset_->split.test[i].odt);
    ASSERT_TRUE(est.ok());
    EXPECT_TRUE(std::isfinite(est->minutes));
    EXPECT_GT(est->minutes, 0);
    EXPECT_LT(est->minutes, 120);
    EXPECT_EQ(est->pit.grid_size(), 10);
  }
}

TEST_F(DotOracleFixture, InferredPitIsCanonical) {
  std::vector<Pit> pits = oracle_->InferPits({dataset_->split.test[0].odt});
  ASSERT_EQ(pits.size(), 1u);
  const Pit& pit = pits[0];
  for (int64_t r = 0; r < 10; ++r) {
    for (int64_t c = 0; c < 10; ++c) {
      float m = pit.At(kPitMask, r, c);
      EXPECT_TRUE(m == 1.0f || m == -1.0f);
      for (int64_t ch = 1; ch < kPitChannels; ++ch) {
        float v = pit.At(ch, r, c);
        EXPECT_GE(v, -1.0f);
        EXPECT_LE(v, 1.0f);
        if (m < 0) EXPECT_EQ(v, -1.0f);
      }
    }
  }
}

TEST_F(DotOracleFixture, BatchedInferenceMatchesCount) {
  std::vector<OdtInput> odts;
  for (size_t i = 0; i < 7; ++i) odts.push_back(dataset_->split.test[i].odt);
  EXPECT_EQ(oracle_->InferPits(odts).size(), 7u);
}

TEST_F(DotOracleFixture, EstimateFromPitsMatchesBatchSize) {
  std::vector<Pit> pits;
  std::vector<OdtInput> odts;
  for (size_t i = 0; i < 5; ++i) {
    pits.push_back(oracle_->GroundTruthPit(dataset_->split.test[i].trajectory));
    odts.push_back(dataset_->split.test[i].odt);
  }
  std::vector<double> est = oracle_->EstimateFromPits(pits, odts);
  EXPECT_EQ(est.size(), 5u);
  for (double v : est) EXPECT_TRUE(std::isfinite(v));
}

TEST_F(DotOracleFixture, SaveLoadReproducesEstimates) {
  std::string path = ::testing::TempDir() + "/dot_ckpt.bin";
  ASSERT_TRUE(oracle_->SaveFile(path).ok());
  DotOracle loaded(TinyConfig(), *grid_);
  ASSERT_TRUE(loaded.LoadFile(path).ok());
  std::vector<Pit> pits;
  std::vector<OdtInput> odts;
  for (size_t i = 0; i < 3; ++i) {
    pits.push_back(oracle_->GroundTruthPit(dataset_->split.test[i].trajectory));
    odts.push_back(dataset_->split.test[i].odt);
  }
  std::vector<double> a = oracle_->EstimateFromPits(pits, odts);
  std::vector<double> b = loaded.EstimateFromPits(pits, odts);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  std::remove(path.c_str());
}

TEST_F(DotOracleFixture, AdoptStage1SharesDenoiser) {
  DotConfig vit_cfg = TinyConfig();
  vit_cfg.estimator_kind = EstimatorKind::kVit;
  DotOracle vit(vit_cfg, *grid_);
  ASSERT_TRUE(vit.AdoptStage1(*oracle_).ok());
  ASSERT_TRUE(vit.TrainStage2(dataset_->split.train, dataset_->split.val).ok());
  Result<DotEstimate> est = vit.Estimate(dataset_->split.test[0].odt);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(std::isfinite(est->minutes));
}

TEST_F(DotOracleFixture, AdoptStage1RejectsMismatchedArchitecture) {
  DotConfig other = TinyConfig();
  other.unet.base_channels = 12;
  DotOracle mismatched(other, *grid_);
  EXPECT_FALSE(mismatched.AdoptStage1(*oracle_).ok());
}

TEST_F(DotOracleFixture, ConditionAblationsZeroFeatures) {
  DotConfig cfg = TinyConfig();
  cfg.use_od_condition = false;
  DotOracle no_od(cfg, *grid_);
  auto v = no_od.EncodeCondition(dataset_->split.test[0].odt);
  EXPECT_EQ(v[0], 0.0f);
  EXPECT_EQ(v[1], 0.0f);
  EXPECT_EQ(v[2], 0.0f);
  EXPECT_EQ(v[3], 0.0f);
  EXPECT_NE(v[4], 0.0f);  // time survives

  cfg = TinyConfig();
  cfg.use_time_condition = false;
  DotOracle no_t(cfg, *grid_);
  auto w = no_t.EncodeCondition(dataset_->split.test[0].odt);
  EXPECT_EQ(w[4], 0.0f);
}

TEST_F(DotOracleFixture, UntrainedOracleRefusesQueries) {
  DotOracle fresh(TinyConfig(), *grid_);
  Result<DotEstimate> est = fresh.Estimate(dataset_->split.test[0].odt);
  EXPECT_FALSE(est.ok());
  EXPECT_TRUE(est.status().IsFailedPrecondition());
  EXPECT_FALSE(fresh.SaveFile("/tmp/should_not_exist.bin").ok());
}

TEST_F(DotOracleFixture, Stage2RequiresStage1) {
  DotOracle fresh(TinyConfig(), *grid_);
  Status s = fresh.TrainStage2(dataset_->split.train, dataset_->split.val);
  EXPECT_TRUE(s.IsFailedPrecondition());
}

TEST_F(DotOracleFixture, ParameterCountsArePositiveAndSplit) {
  EXPECT_GT(oracle_->Stage1NumParams(), 10000);
  EXPECT_GT(oracle_->Stage2NumParams(), 1000);
  EXPECT_EQ(oracle_->NumParams(),
            oracle_->Stage1NumParams() + oracle_->Stage2NumParams());
}

}  // namespace
}  // namespace dot
