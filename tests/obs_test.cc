// Tests for the observability subsystem: metrics registry, trace spans
// (including nesting across thread-pool tasks), and op-level profiling.

#include <cstdlib>
#include <fstream>
#include <thread>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/ring.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "tensor/ops.h"
#include "util/thread_pool.h"

namespace dot {
namespace {

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.Value(), static_cast<int64_t>(kThreads) * kPerThread);
}

TEST(CounterTest, IncrementByDelta) {
  obs::Counter counter;
  counter.Increment(5);
  counter.Increment(-2);
  EXPECT_EQ(counter.Value(), 3);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0);
}

TEST(GaugeTest, SetAndRead) {
  obs::Gauge gauge;
  gauge.Set(3.25);
  EXPECT_DOUBLE_EQ(gauge.Value(), 3.25);
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  obs::Histogram h({10.0, 20.0, 50.0});
  h.Observe(10.0);   // le=10 (inclusive)
  h.Observe(10.5);   // le=20
  h.Observe(20.0);   // le=20
  h.Observe(49.0);   // le=50
  h.Observe(50.01);  // overflow (+inf)
  obs::HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.cumulative_buckets.size(), 4u);
  EXPECT_EQ(s.cumulative_buckets[0].second, 1);  // <= 10
  EXPECT_EQ(s.cumulative_buckets[1].second, 3);  // <= 20
  EXPECT_EQ(s.cumulative_buckets[2].second, 4);  // <= 50
  EXPECT_EQ(s.cumulative_buckets[3].second, 5);  // <= +inf
  EXPECT_EQ(s.count, 5);
  EXPECT_DOUBLE_EQ(s.sum, 10.0 + 10.5 + 20.0 + 49.0 + 50.01);
}

TEST(HistogramTest, QuantileInterpolatesInsideBuckets) {
  // 100 observations spread one per unit across (0, 100] with bounds every
  // 10: each bucket holds exactly 10, so quantiles are exact up to the
  // linear interpolation inside one bucket.
  obs::Histogram h(obs::Histogram::LinearBounds(10, 10, 10));
  for (int i = 1; i <= 100; ++i) h.Observe(static_cast<double>(i));
  EXPECT_NEAR(h.Quantile(0.50), 50.0, 1.0);
  EXPECT_NEAR(h.Quantile(0.95), 95.0, 1.0);
  EXPECT_NEAR(h.Quantile(0.99), 99.0, 1.0);
  EXPECT_NEAR(h.Quantile(1.00), 100.0, 1e-9);
  // Degenerate cases.
  obs::Histogram empty({1.0});
  EXPECT_DOUBLE_EQ(empty.Quantile(0.5), 0.0);
}

TEST(HistogramTest, QuantileOfOverflowBucketReportsLastBound) {
  obs::Histogram h({10.0});
  h.Observe(1e9);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 10.0);
}

TEST(HistogramTest, ConcurrentObservationsKeepTotalCount) {
  obs::Histogram h(obs::Histogram::LatencyBoundsUs());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(static_cast<double>(t * 17 + i % 997));
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.Count(), static_cast<int64_t>(kThreads) * kPerThread);
  obs::HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.cumulative_buckets.back().second, h.Count());
}

bool IsValidPrometheusLine(const std::string& line) {
  if (line.empty()) return true;
  if (line.rfind("# TYPE ", 0) == 0) return true;
  // metric_name{labels} value | metric_name value
  size_t space = line.rfind(' ');
  if (space == std::string::npos || space == 0 || space + 1 >= line.size()) {
    return false;
  }
  std::string name = line.substr(0, space);
  size_t brace = name.find('{');
  if (brace != std::string::npos) {
    if (name.back() != '}') return false;
    name = name.substr(0, brace);
  }
  if (name.empty()) return false;
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) return false;
  }
  if (name[0] >= '0' && name[0] <= '9') return false;
  std::string value = line.substr(space + 1);
  return !value.empty();
}

TEST(MetricsRegistryTest, LabeledCounterExportsOneSeriesPerLabelSet) {
  auto& reg = obs::MetricsRegistry::Get();
  obs::Counter* a =
      reg.GetCounter("test_labeled_total", {{"level", "reduced_steps"}});
  obs::Counter* b =
      reg.GetCounter("test_labeled_total", {{"level", "fallback"}});
  EXPECT_NE(a, b);
  // Same name + same labels resolves to the same series object.
  EXPECT_EQ(a,
            reg.GetCounter("test_labeled_total", {{"level", "reduced_steps"}}));
  a->Increment(3);
  b->Increment(5);
  std::string text = reg.ToPrometheusText();
  EXPECT_NE(text.find("test_labeled_total{level=\"reduced_steps\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("test_labeled_total{level=\"fallback\"} 5"),
            std::string::npos);
  // One TYPE comment for the base name, not one per series.
  size_t first = text.find("# TYPE test_labeled_total counter");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE test_labeled_total counter", first + 1),
            std::string::npos);
  // Label values are sanitized into the export-safe charset.
  reg.GetCounter("test_labeled_total", {{"level", "we\"ird value"}});
  EXPECT_NE(reg.ToPrometheusText().find(
                "test_labeled_total{level=\"we_ird_value\"}"),
            std::string::npos);
  std::string json = reg.ToJson();
  // JSON keys carry the series name with quotes escaped.
  EXPECT_NE(json.find("test_labeled_total{level=\\\"fallback\\\"}"),
            std::string::npos);
}

TEST(MetricsRegistryTest, PrometheusExportIsWellFormed) {
  auto& reg = obs::MetricsRegistry::Get();
  reg.GetCounter("test_export_counter")->Increment(7);
  reg.GetGauge("test export gauge!")->Set(1.5);  // name gets sanitized
  reg.GetHistogram("test_export_hist", {1.0, 2.0})->Observe(1.5);
  // The fault-tolerance series (DESIGN.md §5d) must export cleanly;
  // scripts/check.sh greps the dump for them.
  reg.GetCounter("dot_serving_degraded_total", {{"level", "reduced_steps"}});
  reg.GetCounter("dot_serving_degraded_total", {{"level", "cached_neighbor"}});
  reg.GetCounter("dot_serving_degraded_total", {{"level", "fallback"}});
  reg.GetCounter("dot_serving_retries_total");
  reg.GetCounter("dot_train_rollbacks_total", {{"stage", "stage1"}});
  reg.GetCounter("dot_train_skipped_steps_total", {{"stage", "stage1"}});
  std::string text = reg.ToPrometheusText();
  EXPECT_NE(text.find("test_export_counter 7"), std::string::npos);
  EXPECT_NE(text.find("test_export_gauge_ 1.5"), std::string::npos);
  EXPECT_NE(text.find("test_export_hist_bucket{le=\"2\"}"), std::string::npos);
  EXPECT_NE(text.find("test_export_hist_count 1"), std::string::npos);
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_TRUE(IsValidPrometheusLine(line)) << "malformed line: " << line;
  }
  // scripts/check.sh greps this dump for malformed lines.
  if (const char* path = std::getenv("DOT_METRICS_TEXT")) {
    std::ofstream out(path);
    out << text;
  }
}

TEST(MetricsRegistryTest, SameNameReturnsSameMetric) {
  auto& reg = obs::MetricsRegistry::Get();
  obs::Counter* a = reg.GetCounter("test_same_counter");
  obs::Counter* b = reg.GetCounter("test_same_counter");
  EXPECT_EQ(a, b);
}

TEST(MetricsRegistryTest, JsonExportContainsAllSections) {
  auto& reg = obs::MetricsRegistry::Get();
  reg.GetCounter("test_json_counter")->Increment();
  reg.GetHistogram("test_json_hist")->Observe(123.0);
  std::string json = obs::MetricsToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test_json_counter\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // Balanced braces (cheap structural sanity; no JSON parser in-tree).
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(MetricsRegistryTest, SnapshotAndResetValues) {
  auto& reg = obs::MetricsRegistry::Get();
  obs::Counter* c = reg.GetCounter("test_reset_counter");
  c->Increment(3);
  obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("test_reset_counter"), 3);
  reg.ResetValues();
  EXPECT_EQ(c->Value(), 0);
  // The registration survives the reset.
  EXPECT_EQ(reg.GetCounter("test_reset_counter"), c);
}

TEST(TraceTest, DisabledSpansRecordNothing) {
  ASSERT_FALSE(obs::TracingEnabled());
  { obs::TraceSpan span("ignored"); }
  EXPECT_TRUE(obs::TraceEvents().empty());
  EXPECT_EQ(obs::CurrentSpanId(), 0u);
}

TEST(TraceTest, SpanNestingOnOneThread) {
  obs::StartTracing();
  {
    obs::TraceSpan outer("outer");
    uint64_t outer_id = obs::CurrentSpanId();
    EXPECT_NE(outer_id, 0u);
    {
      obs::TraceSpan inner("inner", "\"step\": 3");
      EXPECT_NE(obs::CurrentSpanId(), outer_id);
    }
    EXPECT_EQ(obs::CurrentSpanId(), outer_id);
  }
  std::vector<obs::TraceEvent> events = obs::StopTracing();
  ASSERT_EQ(events.size(), 2u);  // inner closes first
  const obs::TraceEvent& inner = events[0];
  const obs::TraceEvent& outer = events[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(inner.parent_id, outer.id);
  EXPECT_EQ(outer.parent_id, 0u);
  EXPECT_GE(inner.ts_us, outer.ts_us);
  EXPECT_LE(inner.ts_us + inner.dur_us, outer.ts_us + outer.dur_us);
  EXPECT_EQ(inner.args, "\"step\": 3");
}

TEST(TraceTest, NestingPropagatesAcrossThreadPoolTasks) {
  obs::StartTracing();
  uint64_t outer_id = 0;
  {
    obs::TraceSpan outer("submit_site");
    outer_id = obs::CurrentSpanId();
    ThreadPool* pool = ThreadPool::Global();
    for (int i = 0; i < 4; ++i) {
      pool->Submit([] { obs::TraceSpan task("pool_task"); });
    }
    pool->Wait();
  }
  std::vector<obs::TraceEvent> events = obs::StopTracing();
  int task_spans = 0;
  for (const auto& e : events) {
    if (e.name == "pool_task") {
      ++task_spans;
      EXPECT_EQ(e.parent_id, outer_id)
          << "pool task span must report the submitting span as parent";
    }
  }
  EXPECT_EQ(task_spans, 4);
}

TEST(TraceTest, ChromeJsonExportIsLoadable) {
  obs::StartTracing();
  {
    obs::TraceSpan a("alpha");
    obs::TraceSpan b("beta \"quoted\"");
  }
  std::vector<obs::TraceEvent> events = obs::StopTracing();
  std::string json = obs::ToChromeJson(events);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("beta \\\"quoted\\\""), std::string::npos);
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceTest, StopWritesFile) {
  std::string path = ::testing::TempDir() + "/dot_trace_test.json";
  obs::StartTracing(path);
  { obs::TraceSpan span("file_span"); }
  obs::StopTracing();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("file_span"), std::string::npos);
  std::remove(path.c_str());
}

TEST(OpProfilerTest, DisabledRecordsNothingAndKeepsResultsIdentical) {
  obs::OpProfiler::Enable(false);
  obs::OpProfiler::Reset();
  Rng rng(7);
  Tensor x = Tensor::Randn({2, 3, 8, 8}, &rng);
  Tensor w = Tensor::Randn({4, 3, 3, 3}, &rng);
  Tensor baseline = Conv2d(x, w, Tensor(), 1, 1);
  EXPECT_EQ(obs::OpProfiler::Get(obs::OpKind::kConv2d).calls, 0);

  obs::OpProfiler::Enable(true);
  Tensor profiled = Conv2d(x, w, Tensor(), 1, 1);
  obs::OpProfiler::Enable(false);
  ASSERT_EQ(baseline.numel(), profiled.numel());
  for (int64_t i = 0; i < baseline.numel(); ++i) {
    EXPECT_EQ(baseline.at(i), profiled.at(i)) << "profiling altered op output";
  }
}

TEST(OpProfilerTest, RecordsConvAndGemmCallsWithFlops) {
  obs::OpProfiler::Reset();
  obs::OpProfiler::Enable(true);
  Rng rng(13);
  Tensor x = Tensor::Randn({1, 2, 6, 6}, &rng);
  Tensor w = Tensor::Randn({3, 2, 3, 3}, &rng);
  Conv2d(x, w, Tensor(), 1, 1);
  Tensor a = Tensor::Randn({4, 5}, &rng);
  Tensor b = Tensor::Randn({5, 6}, &rng);
  MatMul(a, b);
  obs::OpProfiler::Enable(false);

  obs::OpStats conv = obs::OpProfiler::Get(obs::OpKind::kConv2d);
  EXPECT_EQ(conv.calls, 1);
  // 2 * OC * C*KH*KW * N*OH*OW = 2 * 3 * 18 * 36
  EXPECT_DOUBLE_EQ(conv.flops, 2.0 * 3 * 2 * 3 * 3 * 6 * 6);
  EXPECT_GT(conv.total_ns, 0);

  obs::OpStats gemm = obs::OpProfiler::Get(obs::OpKind::kGemm);
  EXPECT_EQ(gemm.calls, 1);
  EXPECT_DOUBLE_EQ(gemm.flops, 2.0 * 4 * 5 * 6);

  std::string json = obs::OpProfiler::ToJson();
  EXPECT_NE(json.find("\"conv2d\""), std::string::npos);
  EXPECT_NE(json.find("\"gemm\""), std::string::npos);
  EXPECT_NE(json.find("\"attention\""), std::string::npos);
  obs::OpProfiler::Reset();
}

TEST(DumpMetricsTest, WritesCombinedJsonFile) {
  obs::MetricsRegistry::Get().GetCounter("test_dump_counter")->Increment();
  std::string path = ::testing::TempDir() + "/dot_metrics_dump.json";
  ASSERT_TRUE(obs::DumpMetrics(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("\"test_dump_counter\""), std::string::npos);
  EXPECT_NE(content.find("\"ops\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(GaugeAddTest, ConcurrentAddsSumExactly) {
  obs::Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) {
        gauge.Add(1.0);
        gauge.Add(-1.0);
        gauge.Add(1.0);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Set() would lose concurrent updates; the CAS Add must not.
  EXPECT_DOUBLE_EQ(gauge.Value(), kThreads * static_cast<double>(kPerThread));
}

// --- Rolling-window histogram under a fake clock --------------------------

struct WindowFixture {
  double now_s = 1000.0;  // arbitrary nonzero origin
  obs::RollingHistogram window;
  explicit WindowFixture(std::vector<double> bounds = {10, 100, 1000},
                         double window_s = 60, double bucket_s = 5)
      : window(std::move(bounds), window_s, bucket_s) {
    window.SetClockForTesting([this] { return now_s; });
  }
};

TEST(RollingWindowTest, ObserveCountAndQuantiles) {
  WindowFixture f;
  for (int i = 0; i < 50; ++i) f.window.Observe(5.0);    // le=10
  for (int i = 0; i < 50; ++i) f.window.Observe(500.0);  // le=1000
  EXPECT_EQ(f.window.Count(), 100);
  EXPECT_LE(f.window.Quantile(0.25), 10.0);
  double p95 = f.window.Quantile(0.95);
  EXPECT_GT(p95, 100.0);
  EXPECT_LE(p95, 1000.0);
  obs::HistogramSnapshot snap = f.window.Snapshot();
  EXPECT_EQ(snap.count, 100);
  EXPECT_DOUBLE_EQ(snap.sum, 50 * 5.0 + 50 * 500.0);
}

TEST(RollingWindowTest, SamplesExpireAfterTheWindow) {
  WindowFixture f;
  f.window.Observe(50.0);
  EXPECT_EQ(f.window.Count(), 1);
  f.now_s += 30;  // still inside the 60s window
  f.window.Observe(50.0);
  EXPECT_EQ(f.window.Count(), 2);
  f.now_s += 40;  // first sample now ~70s old; second ~40s
  EXPECT_EQ(f.window.Count(), 1);
  f.now_s += 70;  // everything aged out
  EXPECT_EQ(f.window.Count(), 0);
  EXPECT_DOUBLE_EQ(f.window.Quantile(0.95), 0.0);
}

TEST(RollingWindowTest, RingSlotsAreReusedAcrossManyRotations) {
  WindowFixture f;
  // One sample per 5s epoch for 10 minutes: far more epochs than slots, so
  // every slot is CAS-reclaimed many times over.
  for (int i = 0; i < 120; ++i) {
    f.window.Observe(50.0);
    f.now_s += 5;
  }
  // Live window holds the last 60-65s => 12 or 13 of the 5s epochs.
  int64_t live = f.window.Count();
  EXPECT_GE(live, 12);
  EXPECT_LE(live, 13);
}

TEST(RollingWindowTest, ResetDropsEverything) {
  WindowFixture f;
  for (int i = 0; i < 10; ++i) f.window.Observe(7.0);
  EXPECT_EQ(f.window.Count(), 10);
  f.window.Reset();
  EXPECT_EQ(f.window.Count(), 0);
  f.window.Observe(7.0);  // reusable after reset
  EXPECT_EQ(f.window.Count(), 1);
}

TEST(MetricsRegistryTest, WindowExportsPercentileGaugesAndJsonSection) {
  auto& reg = obs::MetricsRegistry::Get();
  obs::RollingHistogram* w = reg.GetWindow("test_window_latency_us");
  EXPECT_EQ(reg.GetWindow("test_window_latency_us"), w);
  w->Observe(42.0);
  std::string text = reg.ToPrometheusText();
  EXPECT_NE(text.find("test_window_latency_us_window_p50"), std::string::npos);
  EXPECT_NE(text.find("test_window_latency_us_window_p95"), std::string::npos);
  EXPECT_NE(text.find("test_window_latency_us_window_p99"), std::string::npos);
  EXPECT_NE(text.find("test_window_latency_us_window_count"),
            std::string::npos);
  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"windows\""), std::string::npos);
  EXPECT_NE(json.find("\"test_window_latency_us\""), std::string::npos);
  obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.windows.at("test_window_latency_us").count, 1);
}

// --- Slow-query ring ------------------------------------------------------

TEST(SlowQueryRingTest, KeepsTheMostRecentCapacityRecords) {
  obs::SlowQueryRing ring(4);
  for (int i = 0; i < 10; ++i) {
    obs::SlowQueryRecord rec;
    rec.request_id = static_cast<uint64_t>(i);
    rec.latency_ms = 10.0 * i;
    ring.Push(std::move(rec));
  }
  EXPECT_EQ(ring.total_pushed(), 10);
  std::vector<obs::SlowQueryRecord> snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // Oldest-first of the surviving tail: 6, 7, 8, 9.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(snap[i].request_id, static_cast<uint64_t>(6 + i));
  }
}

TEST(SlowQueryRingTest, ToJsonEscapesHostileNotes) {
  obs::SlowQueryRing ring(2);
  obs::SlowQueryRecord rec;
  rec.request_id = 1;
  rec.note = "evil\"note\\with\nnewline\tand\x01" "ctrl";
  ring.Push(std::move(rec));
  std::string json = ring.ToJson();
  EXPECT_NE(json.find("evil\\\"note\\\\with\\nnewline\\tand\\u0001" "ctrl"),
            std::string::npos);
  // No raw control byte from the note may survive into the JSON text
  // (structural '\n' between records is legitimate formatting).
  for (char c : json) {
    if (c == '\n') continue;
    EXPECT_GE(static_cast<unsigned char>(c), 0x20);
  }
  int depth = 0;
  for (char c : json) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
  }
  EXPECT_EQ(depth, 0);
}

// --- JSON escaping of hostile span names (regression: the chrome-trace
// exporter and every /varz-style dump share obs::JsonEscape) --------------

TEST(TraceTest, HostileSpanNameSurvivesChromeJsonExport) {
  obs::StartTracing();
  {
    obs::TraceSpan span("evil\"name\\with\\\\stuff\nand\tctrl\x02" "end");
  }
  std::vector<obs::TraceEvent> events = obs::StopTracing();
  ASSERT_EQ(events.size(), 1u);
  std::string json = obs::ToChromeJson(events);
  // The escaped form must appear...
  EXPECT_NE(
      json.find("evil\\\"name\\\\with\\\\\\\\stuff\\nand\\tctrl\\u0002"
                "end"),
      std::string::npos);
  // ...and no raw quote-breaking or control bytes may remain (structural
  // '\n' between events is legitimate formatting).
  for (char c : json) {
    if (c == '\n') continue;
    EXPECT_GE(static_cast<unsigned char>(c), 0x20);
  }
  // Unescape and verify the exact original round-trips.
  std::string unescaped;
  size_t start = json.find("evil");
  ASSERT_NE(start, std::string::npos);
  for (size_t i = start; i < json.size();) {
    char c = json[i];
    if (c == '"') break;  // end of the name string literal
    if (c == '\\') {
      char n = json[i + 1];
      if (n == 'n') unescaped += '\n';
      else if (n == 't') unescaped += '\t';
      else if (n == 'u') {
        unescaped += static_cast<char>(
            std::stoi(json.substr(i + 2, 4), nullptr, 16));
        i += 6;
        continue;
      } else {
        unescaped += n;  // backslash-quote or backslash-backslash
      }
      i += 2;
      continue;
    }
    unescaped += c;
    ++i;
  }
  EXPECT_EQ(unescaped, "evil\"name\\with\\\\stuff\nand\tctrl\x02" "end");
}

TEST(TraceTest, ManualSpanRecordingStitchesUnderExplicitParent) {
  obs::StartTracing();
  uint64_t root = obs::NewSpanId();
  ASSERT_NE(root, 0u);
  int64_t t0 = obs::TraceNowUs();
  obs::RecordSpan("child", obs::NewSpanId(), root, t0, 5, "\"k\": 1");
  obs::RecordSpan("request", root, 0, t0, 10);
  std::vector<obs::TraceEvent> events = obs::StopTracing();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "child");
  EXPECT_EQ(events[0].parent_id, root);
  EXPECT_EQ(events[1].name, "request");
  EXPECT_EQ(events[1].id, root);
  EXPECT_EQ(events[1].parent_id, 0u);
}

TEST(TraceTest, ManualSpanApisAreInertWhenDisabled) {
  ASSERT_FALSE(obs::TracingEnabled());
  EXPECT_EQ(obs::NewSpanId(), 0u);
  EXPECT_EQ(obs::TraceNowUs(), 0);
  obs::RecordSpan("ignored", 1, 0, 0, 1);  // dropped silently
  EXPECT_TRUE(obs::TraceEvents().empty());
}

}  // namespace
}  // namespace dot
