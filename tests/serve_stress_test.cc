// Concurrency stress for the serving front-end, designed to run under
// TSan: N client threads hammer a loopback server whose backend is a
// deterministic stub (no model — the point is the locking, batching, and
// backpressure, not diffusion). Asserts:
//   - every request gets exactly one response, ids echoed correctly
//   - overload is answered with typed ResourceExhausted responses
//   - graceful drain: requests in flight at Shutdown are still answered
//   - the dot_server_* stats reconcile with client-observed responses

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/client.h"
#include "serve/server.h"

namespace dot {
namespace serve {
namespace {

OdtInput MakeOdt(int i) {
  OdtInput odt;
  odt.origin = {104.0 + (i % 17) * 1e-3, 30.6};
  odt.destination = {104.05, 30.65 + (i % 13) * 1e-3};
  odt.departure_time = 1541060400 + i;
  return odt;
}

/// Deterministic stub: minutes = departure_time % 1000, optionally slowed
/// to force queue growth.
BatchBackend StubBackend(std::atomic<int64_t>* served, double delay_ms = 0) {
  return [served, delay_ms](const std::vector<OdtInput>& odts,
                            const QueryOptions&)
             -> Result<std::vector<DotEstimate>> {
    if (delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(delay_ms));
    }
    std::vector<DotEstimate> out(odts.size());
    for (size_t i = 0; i < odts.size(); ++i) {
      out[i].minutes = static_cast<double>(odts[i].departure_time % 1000);
      out[i].quality = ServedQuality::kFull;
    }
    served->fetch_add(static_cast<int64_t>(odts.size()));
    return out;
  };
}

TEST(ServeStressTest, ManyClientsManyRequestsAllAnswered) {
  const int kClients = 8;
  const int kPerClient = 200;
  std::atomic<int64_t> served{0};
  ServerConfig config;
  config.batcher.max_batch = 16;
  config.batcher.max_wave_age_ms = 1.0;
  config.batcher.queue_capacity = 1 << 14;  // no overload in this test
  config.batcher.queue_budget_ms = 60000;
  Server server(StubBackend(&served), config);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<int64_t> ok_responses{0};
  std::atomic<int64_t> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client;
      ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
      // Pipeline a window of 8 requests to give the batcher real waves.
      const int kWindow = 8;
      uint64_t next_id = static_cast<uint64_t>(c) << 32;
      int sent = 0, received = 0;
      while (received < kPerClient) {
        while (sent < kPerClient && sent - received < kWindow) {
          OdtInput odt = MakeOdt(c * kPerClient + sent);
          ASSERT_TRUE(client.SendQuery(next_id + sent, odt).ok());
          ++sent;
        }
        Result<QueryResponse> r =
            client.ReceiveFor(next_id + received, /*timeout_ms=*/30000);
        ASSERT_TRUE(r.ok()) << r.status();
        if (r->code == 0) {
          double expect = static_cast<double>(
              MakeOdt(c * kPerClient + received).departure_time % 1000);
          if (r->minutes == expect) {
            ok_responses.fetch_add(1);
          } else {
            mismatches.fetch_add(1);
          }
        }
        ++received;
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(ok_responses.load(), kClients * kPerClient);

  server.Shutdown();
  ServerStats stats = server.stats();
  BatcherStats bstats = server.batcher_stats();
  // Server-side accounting must reconcile with what the clients saw.
  EXPECT_EQ(stats.requests, kClients * kPerClient);
  EXPECT_EQ(stats.responses, kClients * kPerClient);
  EXPECT_EQ(stats.overload_rejected, 0);
  EXPECT_EQ(bstats.submitted, kClients * kPerClient);
  EXPECT_EQ(bstats.completed, kClients * kPerClient);
  EXPECT_EQ(served.load(), kClients * kPerClient);
  EXPECT_EQ(stats.connections_accepted, kClients);
  // Pipelined arrivals must actually coalesce: strictly fewer backend waves
  // than requests (mean wave size > 1).
  EXPECT_LT(bstats.waves, static_cast<int64_t>(kClients) * kPerClient);
  EXPECT_GE(bstats.waves, 1);
}

TEST(ServeStressTest, OverloadYieldsTypedRejectionsAndServerSurvives) {
  std::atomic<int64_t> served{0};
  ServerConfig config;
  config.batcher.max_batch = 4;
  config.batcher.queue_capacity = 8;  // tiny: easy to overflow
  config.batcher.queue_budget_ms = 10000;
  config.batcher.max_wave_age_ms = 1.0;
  Server server(StubBackend(&served, /*delay_ms=*/20), config);
  ASSERT_TRUE(server.Start().ok());

  const int kClients = 4;
  const int kPerClient = 100;
  std::atomic<int64_t> oks{0};
  std::atomic<int64_t> rejections{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client;
      ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
      uint64_t base = static_cast<uint64_t>(c) << 32;
      // Blast the whole batch without reading: floods the bounded queue.
      for (int i = 0; i < kPerClient; ++i) {
        ASSERT_TRUE(client.SendQuery(base + i, MakeOdt(i)).ok());
      }
      for (int i = 0; i < kPerClient; ++i) {
        Result<QueryResponse> r =
            client.ReceiveFor(base + i, /*timeout_ms=*/60000);
        ASSERT_TRUE(r.ok()) << r.status();
        if (r->code == 0) {
          oks.fetch_add(1);
        } else {
          // Typed backpressure, not a garbled error.
          EXPECT_EQ(r->code,
                    static_cast<uint8_t>(StatusCode::kResourceExhausted));
          EXPECT_FALSE(r->message.empty());
          rejections.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  // Every request was answered one way or the other...
  EXPECT_EQ(oks.load() + rejections.load(), kClients * kPerClient);
  // ...and the tiny queue + slow backend guarantee real shedding happened.
  EXPECT_GT(rejections.load(), 0);
  EXPECT_GT(oks.load(), 0);

  server.Shutdown();
  ServerStats stats = server.stats();
  BatcherStats bstats = server.batcher_stats();
  EXPECT_EQ(stats.requests, kClients * kPerClient);
  EXPECT_EQ(stats.responses, kClients * kPerClient);
  EXPECT_EQ(stats.overload_rejected, rejections.load());
  EXPECT_EQ(bstats.rejected_full + bstats.rejected_stale, rejections.load());
  EXPECT_EQ(bstats.completed, oks.load());
  EXPECT_EQ(served.load(), oks.load());
}

TEST(ServeStressTest, GracefulDrainAnswersInFlightRequests) {
  std::atomic<int64_t> served{0};
  ServerConfig config;
  config.batcher.max_batch = 8;
  config.batcher.max_wave_age_ms = 50.0;  // slow trigger: queue builds up
  config.batcher.queue_capacity = 1 << 12;
  config.batcher.queue_budget_ms = 60000;
  Server server(StubBackend(&served, /*delay_ms=*/5), config);
  ASSERT_TRUE(server.Start().ok());

  const int kInFlight = 64;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  for (int i = 0; i < kInFlight; ++i) {
    ASSERT_TRUE(client.SendQuery(i, MakeOdt(i)).ok());
  }
  // Shut down while (most of) those are still queued. Drain must answer
  // every admitted request and flush the responses before sockets close.
  std::thread shutdown_thread([&] { server.Shutdown(); });
  int answered = 0;
  for (int i = 0; i < kInFlight; ++i) {
    Result<QueryResponse> r = client.ReceiveFor(i, /*timeout_ms=*/30000);
    if (!r.ok()) break;  // connection closed after the drain completed
    EXPECT_TRUE(r->code == 0 ||
                r->code ==
                    static_cast<uint8_t>(StatusCode::kFailedPrecondition));
    ++answered;
  }
  shutdown_thread.join();

  BatcherStats bstats = server.batcher_stats();
  ServerStats stats = server.stats();
  // Everything the batcher admitted was completed (the drain guarantee) and
  // written back to the client before the connection closed.
  EXPECT_EQ(bstats.completed, bstats.submitted);
  EXPECT_EQ(answered, stats.responses);
  EXPECT_EQ(served.load(), bstats.completed);
  EXPECT_GE(bstats.drain_flushes + bstats.age_flushes + bstats.size_flushes,
            1);
}

TEST(ServeStressTest, PingsInterleaveWithQueriesAcrossThreads) {
  std::atomic<int64_t> served{0};
  Server server(StubBackend(&served));
  ASSERT_TRUE(server.Start().ok());
  const int kClients = 4;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Client client;
      ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
      for (int i = 0; i < 50; ++i) {
        uint64_t id = static_cast<uint64_t>(c) * 1000 + i;
        if (i % 5 == 0) {
          EXPECT_TRUE(client.PingServer(id, /*timeout_ms=*/10000).ok());
        } else {
          Result<QueryResponse> r =
              client.Call(id, MakeOdt(i), /*deadline_ms=*/50,
                          /*timeout_ms=*/10000);
          ASSERT_TRUE(r.ok()) << r.status();
          EXPECT_EQ(r->id, id);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  server.Shutdown();
  ServerStats stats = server.stats();
  EXPECT_EQ(stats.pings, kClients * 10);
  EXPECT_EQ(stats.requests, kClients * 40);
  EXPECT_EQ(stats.responses, stats.requests);
}

TEST(ServeStressTest, ConcurrentShutdownIsIdempotent) {
  std::atomic<int64_t> served{0};
  auto server = std::make_unique<Server>(StubBackend(&served));
  ASSERT_TRUE(server->Start().ok());
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&] { server->Shutdown(); });
  }
  for (auto& t : stoppers) t.join();
  server.reset();  // destructor Shutdown after explicit ones: also safe
}

}  // namespace
}  // namespace serve
}  // namespace dot
