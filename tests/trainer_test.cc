// Trainer extraction parity (DESIGN.md §5k): the generic train::Trainer
// must reproduce the pre-refactor DotOracle training loops *bitwise* on a
// fixed seed. The reference below is the old stage-1/stage-2 loop body,
// reconstructed from the oracle's public building blocks with the exact
// operation order (cosine LR before shuffle, trailing-partial-batch drop,
// forward -> finite check -> backward -> clip -> finite check -> step).
// Any reordering in the extracted Trainer shows up as a loss-trajectory
// mismatch here.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/diffusion.h"
#include "core/dot_oracle.h"
#include "core/estimator.h"
#include "core/unet.h"
#include "eval/dataset.h"
#include "geo/pit.h"
#include "obs/metrics.h"
#include "sim/city.h"
#include "sim/trips.h"
#include "tensor/ops.h"
#include "tensor/optim.h"
#include "util/rng.h"

namespace dot {
namespace {

/// Verbatim copy of the pre-refactor gradient clip (now train::ClipGradNorm)
/// so the reference loop does not depend on the code under test.
double ReferenceClip(std::vector<Tensor> params, float max_norm) {
  double sq = 0;
  for (const auto& p : params) {
    if (!p.has_grad()) continue;
    for (float g : p.grad_vec()) sq += static_cast<double>(g) * g;
  }
  double norm = std::sqrt(sq);
  if (max_norm > 0 && std::isfinite(norm) &&
      norm > static_cast<double>(max_norm)) {
    float scale = static_cast<float>(static_cast<double>(max_norm) / norm);
    for (auto& p : params) {
      if (!p.has_grad()) continue;
      float* g = p.grad();
      for (int64_t i = 0; i < p.numel(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

void CopyPitInto(const Pit& pit, Tensor* batch, int64_t i) {
  int64_t per = pit.tensor().numel();
  std::copy(pit.tensor().data(), pit.tensor().data() + per,
            batch->data() + i * per);
}

struct ReferenceTrajectory {
  std::vector<double> stage1_losses;
  std::vector<double> stage2_losses;
};

/// Replays the pre-refactor TrainStage1 + TrainStage2 loops (with
/// stage2_inferred_fraction == 0 and val_samples == 0, so the shared RNG
/// stream is shuffle + MakeTrainingExample only) and records per-epoch
/// mean losses.
ReferenceTrajectory RunReferenceLoops(const DotConfig& base, const Grid& grid,
                                      const std::vector<TripSample>& train) {
  ReferenceTrajectory out;
  DotConfig cfg = base;
  cfg.unet.max_steps = std::max(cfg.unet.max_steps, cfg.diffusion_steps);
  cfg.estimator.grid_size = cfg.grid_size;
  // Same init stream and construction order as the DotOracle constructor.
  Rng init_rng(cfg.seed ^ 0xD07);
  UnetDenoiser denoiser(cfg.unet, &init_rng);
  std::unique_ptr<PitEstimator> estimator =
      MakeEstimator(cfg.estimator_kind, cfg.estimator, &init_rng);
  Diffusion diffusion(DiffusionSchedule(cfg.diffusion_steps),
                      cfg.parameterization);
  Rng rng(cfg.seed);

  int64_t l = cfg.grid_size;
  int64_t b = std::min<int64_t>(cfg.batch_size,
                                static_cast<int64_t>(train.size()));

  // ---- Stage 1 (old DotOracle::TrainStage1 body) ----
  std::vector<Pit> pits;
  std::vector<std::vector<float>> conds;
  for (const auto& s : train) {
    pits.push_back(Pit::Build(s.trajectory, grid, cfg.pit_interpolate));
    conds.push_back(EncodeOdt(s.odt, grid));
  }
  {
    optim::Adam opt(denoiser.Parameters(), cfg.lr);
    std::vector<int64_t> order(train.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
    for (int64_t epoch = 0; epoch < cfg.stage1_epochs; ++epoch) {
      double progress = cfg.stage1_epochs > 1
                            ? static_cast<double>(epoch) /
                                  static_cast<double>(cfg.stage1_epochs - 1)
                            : 0.0;
      opt.set_lr(static_cast<float>(
          cfg.lr * (0.55 + 0.45 * std::cos(progress * 3.14159265))));
      rng.Shuffle(&order);
      double loss_sum = 0;
      int64_t batches = 0;
      for (size_t start = 0; start + static_cast<size_t>(b) <= order.size();
           start += static_cast<size_t>(b)) {
        Tensor x0 = Tensor::Empty({b, kPitChannels, l, l});
        Tensor cond = Tensor::Empty({b, 5});
        for (int64_t i = 0; i < b; ++i) {
          int64_t idx = order[start + static_cast<size_t>(i)];
          CopyPitInto(pits[static_cast<size_t>(idx)], &x0, i);
          std::copy(conds[static_cast<size_t>(idx)].begin(),
                    conds[static_cast<size_t>(idx)].end(),
                    cond.data() + i * 5);
        }
        std::vector<int64_t> steps;
        Tensor eps;
        Tensor xn = diffusion.MakeTrainingExample(x0, &rng, &steps, &eps);
        denoiser.ZeroGrad();
        Tensor pred = denoiser.PredictNoise(xn, steps, cond);
        Tensor target =
            cfg.parameterization == Parameterization::kX0 ? x0 : eps;
        Tensor loss = MseLoss(pred, target);
        double loss_val = static_cast<double>(loss.item());
        if (!std::isfinite(loss_val)) continue;
        loss.Backward();
        double gnorm = ReferenceClip(denoiser.Parameters(), cfg.grad_clip_norm);
        if (!std::isfinite(gnorm)) continue;
        opt.Step();
        loss_sum += loss_val;
        ++batches;
      }
      out.stage1_losses.push_back(
          batches > 0 ? loss_sum / static_cast<double>(batches) : 0);
    }
  }

  // ---- Stage 2 (old DotOracle::TrainStage2 body, no inferred/val PiTs) ----
  double sum = 0, sq = 0;
  for (const auto& s : train) {
    sum += s.travel_time_minutes;
    sq += s.travel_time_minutes * s.travel_time_minutes;
  }
  double n = static_cast<double>(train.size());
  double target_mean = sum / n;
  double target_std =
      std::sqrt(std::max(1e-6, sq / n - target_mean * target_mean));
  std::vector<std::vector<double>> feats;
  for (const auto& s : train) feats.push_back(OdtFeatures(s.odt, grid));
  {
    optim::Adam opt(estimator->module()->Parameters(), cfg.lr);
    std::vector<int64_t> order(train.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int64_t>(i);
    for (int64_t epoch = 0; epoch < cfg.stage2_epochs; ++epoch) {
      rng.Shuffle(&order);
      double loss_sum = 0;
      int64_t batches = 0;
      for (size_t start = 0; start + static_cast<size_t>(b) <= order.size();
           start += static_cast<size_t>(b)) {
        std::vector<Pit> batch;
        std::vector<std::vector<double>> batch_feats;
        std::vector<float> targets;
        for (int64_t i = 0; i < b; ++i) {
          int64_t idx = order[start + static_cast<size_t>(i)];
          batch.push_back(pits[static_cast<size_t>(idx)]);
          batch_feats.push_back(feats[static_cast<size_t>(idx)]);
          targets.push_back(static_cast<float>(
              (train[static_cast<size_t>(idx)].travel_time_minutes -
               target_mean) /
              target_std));
        }
        estimator->module()->ZeroGrad();
        Tensor pred = estimator->ForwardBatch(batch, batch_feats);
        Tensor loss = MseLoss(pred, Tensor::FromVector({b, 1}, targets));
        double loss_val = static_cast<double>(loss.item());
        if (!std::isfinite(loss_val)) continue;
        loss.Backward();
        double gnorm =
            ReferenceClip(estimator->module()->Parameters(), cfg.grad_clip_norm);
        if (!std::isfinite(gnorm)) continue;
        opt.Step();
        loss_sum += loss_val;
        ++batches;
      }
      out.stage2_losses.push_back(
          batches > 0 ? loss_sum / static_cast<double>(batches) : 0);
    }
  }
  return out;
}

class TrainerParityFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CityConfig cc = CityConfig::ChengduLike();
    cc.grid_nodes = 8;
    cc.spacing_meters = 1300;
    city_ = new City(cc, 4);
    TripConfig tc = TripConfig::ChengduLike();
    tc.num_trips = 140;
    dataset_ = new BenchmarkDataset(BuildDataset(*city_, tc, 17, "parity"));
    grid_ = new Grid(dataset_->MakeGrid(8).ValueOrDie());
    DotConfig cfg;
    cfg.grid_size = 8;
    cfg.diffusion_steps = 20;
    cfg.sample_steps = 4;
    cfg.unet.base_channels = 8;
    cfg.unet.levels = 2;
    cfg.unet.cond_dim = 32;
    cfg.estimator.embed_dim = 32;
    cfg.estimator.layers = 1;
    cfg.stage1_epochs = 3;
    cfg.stage2_epochs = 3;
    cfg.grad_clip_norm = 0.5f;  // exercise clip parity, not just the norm walk
    cfg.val_samples = 0;
    cfg.stage2_inferred_fraction = 0.0;
    cfg_ = new DotConfig(cfg);
  }
  static void TearDownTestSuite() {
    delete cfg_;
    delete grid_;
    delete dataset_;
    delete city_;
    cfg_ = nullptr;
    grid_ = nullptr;
    dataset_ = nullptr;
    city_ = nullptr;
  }

  static City* city_;
  static BenchmarkDataset* dataset_;
  static Grid* grid_;
  static DotConfig* cfg_;
};

City* TrainerParityFixture::city_ = nullptr;
BenchmarkDataset* TrainerParityFixture::dataset_ = nullptr;
Grid* TrainerParityFixture::grid_ = nullptr;
DotConfig* TrainerParityFixture::cfg_ = nullptr;

TEST_F(TrainerParityFixture, LossTrajectoryMatchesPreRefactorLoopBitwise) {
  ReferenceTrajectory ref =
      RunReferenceLoops(*cfg_, *grid_, dataset_->split.train);

  DotOracle oracle(*cfg_, *grid_);
  ASSERT_TRUE(oracle.TrainStage1(dataset_->split.train).ok());
  ASSERT_TRUE(
      oracle.TrainStage2(dataset_->split.train, dataset_->split.val).ok());

  const train::TrainReport& s1 = oracle.stage1_report();
  const train::TrainReport& s2 = oracle.stage2_report();
  ASSERT_EQ(s1.epoch_losses.size(), ref.stage1_losses.size());
  for (size_t i = 0; i < ref.stage1_losses.size(); ++i) {
    // EXPECT_EQ on double is exact: bitwise parity, not tolerance.
    EXPECT_EQ(s1.epoch_losses[i], ref.stage1_losses[i]) << "stage1 epoch " << i;
  }
  ASSERT_EQ(s2.epoch_losses.size(), ref.stage2_losses.size());
  for (size_t i = 0; i < ref.stage2_losses.size(); ++i) {
    EXPECT_EQ(s2.epoch_losses[i], ref.stage2_losses[i]) << "stage2 epoch " << i;
  }

  // The exported per-stage loss gauges carry the final epoch values.
  EXPECT_EQ(obs::MetricsRegistry::Get()
                .GetGauge("dot_train_epoch_loss", {{"stage", "stage1"}})
                ->Value(),
            ref.stage1_losses.back());
  EXPECT_EQ(obs::MetricsRegistry::Get()
                .GetGauge("dot_train_epoch_loss", {{"stage", "stage2"}})
                ->Value(),
            ref.stage2_losses.back());
  EXPECT_EQ(oracle.last_stage1_loss(), ref.stage1_losses.back());
}

TEST_F(TrainerParityFixture, ReportCountsCleanRun) {
  DotOracle oracle(*cfg_, *grid_);
  ASSERT_TRUE(oracle.TrainStage1(dataset_->split.train).ok());
  int64_t n = static_cast<int64_t>(dataset_->split.train.size());
  int64_t batches_per_epoch = n / cfg_->batch_size;  // trailing partial dropped
  const train::TrainReport& r = oracle.stage1_report();
  EXPECT_EQ(r.epochs_run, cfg_->stage1_epochs);
  EXPECT_EQ(r.steps, cfg_->stage1_epochs * batches_per_epoch);
  EXPECT_EQ(r.skipped_steps, 0);
  EXPECT_EQ(r.rollbacks, 0);
  EXPECT_FALSE(r.early_stopped);
}

TEST_F(TrainerParityFixture, SameSeedFullPathIsReproducible) {
  // Full stage-2 path (inferred-PiT replacement + validation early stopping)
  // through the extracted Trainer stays deterministic under a fixed seed.
  DotConfig cfg = *cfg_;
  cfg.stage2_inferred_fraction = 0.25;
  cfg.val_samples = 8;
  std::vector<double> runs[2];
  for (int r = 0; r < 2; ++r) {
    DotOracle oracle(cfg, *grid_);
    ASSERT_TRUE(oracle.TrainStage1(dataset_->split.train).ok());
    ASSERT_TRUE(
        oracle.TrainStage2(dataset_->split.train, dataset_->split.val).ok());
    runs[r] = oracle.stage2_report().epoch_losses;
    runs[r].insert(runs[r].end(), oracle.stage1_report().epoch_losses.begin(),
                   oracle.stage1_report().epoch_losses.end());
  }
  EXPECT_EQ(runs[0], runs[1]);
}

}  // namespace
}  // namespace dot
