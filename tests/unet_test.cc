// Tests for the conditioned PiT denoiser (OCConv UNet).

#include "core/unet.h"

#include <gtest/gtest.h>

#include "tensor/ops.h"
#include "tensor/optim.h"

namespace dot {
namespace {

UnetConfig SmallConfig() {
  UnetConfig cfg;
  cfg.base_channels = 8;
  cfg.levels = 2;
  cfg.cond_dim = 16;
  cfg.heads = 2;
  cfg.max_steps = 50;
  return cfg;
}

TEST(OCConvTest, PreservesSpatialDimsChangesChannels) {
  Rng rng(1);
  internal::OCConv block(4, 8, 16, &rng);
  Tensor x = Tensor::Randn({2, 4, 6, 6}, &rng);
  Tensor cond = Tensor::Randn({2, 16}, &rng);
  Tensor y = block.Forward(x, cond);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 8, 6, 6}));
}

TEST(OCConvTest, ConditionActuallyChangesOutput) {
  Rng rng(2);
  internal::OCConv block(4, 4, 16, &rng);
  Tensor x = Tensor::Randn({1, 4, 5, 5}, &rng);
  Tensor c1 = Tensor::Zeros({1, 16});
  Tensor c2 = Tensor::Ones({1, 16});
  NoGradGuard guard;
  Tensor y1 = block.Forward(x, c1);
  Tensor y2 = block.Forward(x, c2);
  double diff = 0;
  for (int64_t i = 0; i < y1.numel(); ++i) diff += std::fabs(y1.at(i) - y2.at(i));
  EXPECT_GT(diff, 1e-3);
}

TEST(SpatialAttentionTest, ResidualShapePreserved) {
  Rng rng(3);
  internal::SpatialAttention att(8, 2, &rng);
  Tensor x = Tensor::Randn({2, 8, 4, 4}, &rng);
  Tensor y = att.Forward(x);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(UnetTest, OutputShapeMatchesInputEvenSize) {
  Rng rng(4);
  UnetDenoiser unet(SmallConfig(), &rng);
  Tensor x = Tensor::Randn({2, 3, 16, 16}, &rng);
  Tensor cond = Tensor::Zeros({2, 5});
  NoGradGuard guard;
  Tensor y = unet.PredictNoise(x, {3, 7}, cond);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(UnetTest, OutputShapeMatchesInputOddSizes) {
  Rng rng(5);
  UnetDenoiser unet(SmallConfig(), &rng);
  NoGradGuard guard;
  for (int64_t l : {10, 15, 20, 25}) {
    Tensor x = Tensor::Randn({1, 3, l, l}, &rng);
    Tensor cond = Tensor::Zeros({1, 5});
    Tensor y = unet.PredictNoise(x, {0}, cond);
    EXPECT_EQ(y.shape(), x.shape()) << "L=" << l;
  }
}

TEST(UnetTest, StepIndexChangesOutput) {
  Rng rng(6);
  UnetDenoiser unet(SmallConfig(), &rng);
  Tensor x = Tensor::Randn({1, 3, 12, 12}, &rng);
  Tensor cond = Tensor::Zeros({1, 5});
  NoGradGuard guard;
  Tensor y0 = unet.PredictNoise(x, {0}, cond);
  Tensor y9 = unet.PredictNoise(x, {40}, cond);
  double diff = 0;
  for (int64_t i = 0; i < y0.numel(); ++i) diff += std::fabs(y0.at(i) - y9.at(i));
  EXPECT_GT(diff, 1e-3);
}

TEST(UnetTest, OdtConditionChangesOutput) {
  Rng rng(7);
  UnetDenoiser unet(SmallConfig(), &rng);
  Tensor x = Tensor::Randn({1, 3, 12, 12}, &rng);
  NoGradGuard guard;
  Tensor c1 = Tensor::Zeros({1, 5});
  Tensor c2 = Tensor::FromVector({1, 5}, {0.5f, -0.5f, 0.8f, -0.2f, 0.1f});
  Tensor y1 = unet.PredictNoise(x, {5}, c1);
  Tensor y2 = unet.PredictNoise(x, {5}, c2);
  double diff = 0;
  for (int64_t i = 0; i < y1.numel(); ++i) diff += std::fabs(y1.at(i) - y2.at(i));
  EXPECT_GT(diff, 1e-3);
}

TEST(UnetTest, GradientsReachEveryParameter) {
  Rng rng(8);
  UnetConfig cfg = SmallConfig();
  cfg.attention_max_hw = 1000;  // make sure attention layers participate
  UnetDenoiser unet(cfg, &rng);
  Tensor x = Tensor::Randn({2, 3, 12, 12}, &rng);
  Tensor cond = Tensor::Randn({2, 5}, &rng);
  Tensor y = unet.PredictNoise(x, {1, 2}, cond);
  Mean(Square(y)).Backward();
  int64_t with_grad = 0, total = 0;
  for (auto& [name, p] : unet.NamedParameters()) {
    ++total;
    bool nonzero = false;
    if (p.has_grad()) {
      for (float g : p.grad_vec()) nonzero = nonzero || g != 0.0f;
    }
    if (nonzero) ++with_grad;
  }
  // All parameters should receive gradient signal.
  EXPECT_EQ(with_grad, total);
}

TEST(UnetTest, TrainingStepReducesNoiseLoss) {
  // A couple of Adam steps on a fixed batch must reduce the loss — the
  // end-to-end sanity check for Algorithm 2's inner loop.
  Rng rng(9);
  UnetConfig cfg = SmallConfig();
  UnetDenoiser unet(cfg, &rng);
  optim::Adam opt(unet.Parameters(), 2e-3f);
  Tensor x = Tensor::Randn({4, 3, 12, 12}, &rng);
  Tensor cond = Tensor::Randn({4, 5}, &rng);
  Tensor eps = Tensor::Randn(x.shape(), &rng);
  std::vector<int64_t> steps = {1, 5, 9, 13};
  double first = 0, last = 0;
  for (int it = 0; it < 12; ++it) {
    unet.ZeroGrad();
    Tensor pred = unet.PredictNoise(x, steps, cond);
    Tensor loss = MseLoss(pred, eps);
    if (it == 0) first = loss.item();
    last = loss.item();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(last, first * 0.8);
}

TEST(UnetTest, SaveLoadReproducesOutputs) {
  Rng rng(10);
  UnetDenoiser a(SmallConfig(), &rng);
  UnetDenoiser b(SmallConfig(), &rng);
  std::string path = ::testing::TempDir() + "/unet_ckpt.bin";
  ASSERT_TRUE(a.SaveFile(path).ok());
  ASSERT_TRUE(b.LoadFile(path).ok());
  Tensor x = Tensor::Randn({1, 3, 12, 12}, &rng);
  Tensor cond = Tensor::Zeros({1, 5});
  NoGradGuard guard;
  Tensor ya = a.PredictNoise(x, {2}, cond);
  Tensor yb = b.PredictNoise(x, {2}, cond);
  for (int64_t i = 0; i < ya.numel(); ++i) EXPECT_FLOAT_EQ(ya.at(i), yb.at(i));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dot
