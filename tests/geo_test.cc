// Tests for the geo substrate: distances, projections, grids, trajectories,
// and PiT construction semantics (paper Definition 2 / Example 2).

#include <gtest/gtest.h>

#include "geo/geo.h"
#include "geo/grid.h"
#include "geo/pit.h"
#include "geo/trajectory.h"

namespace dot {
namespace {

TEST(GeoTest, DistanceZeroForSamePoint) {
  GpsPoint p{104.0, 30.6};
  EXPECT_DOUBLE_EQ(DistanceMeters(p, p), 0.0);
}

TEST(GeoTest, DistanceOneDegreeLatitude) {
  // One degree of latitude is ~111.2 km anywhere.
  double d = DistanceMeters({104.0, 30.0}, {104.0, 31.0});
  EXPECT_NEAR(d, 111200, 500);
}

TEST(GeoTest, DistanceLongitudeShrinksWithLatitude) {
  double at_equator = DistanceMeters({10.0, 0.0}, {11.0, 0.0});
  double at_60 = DistanceMeters({10.0, 60.0}, {11.0, 60.0});
  EXPECT_NEAR(at_60 / at_equator, 0.5, 0.01);
}

TEST(GeoTest, ProjectionRoundTrip) {
  Projection proj({104.06, 30.67});
  GpsPoint p = proj.ToGps(1500.0, -800.0);
  double x, y;
  proj.ToMeters(p, &x, &y);
  EXPECT_NEAR(x, 1500.0, 1e-6);
  EXPECT_NEAR(y, -800.0, 1e-6);
}

TEST(GeoTest, ProjectionDistancesConsistent) {
  Projection proj({126.5, 45.7});
  GpsPoint a = proj.ToGps(0, 0);
  GpsPoint b = proj.ToGps(3000, 4000);
  EXPECT_NEAR(DistanceMeters(a, b), 5000, 10);
}

TEST(GeoTest, BoundingBoxCoverAndContains) {
  BoundingBox box = BoundingBox::Cover({{1, 1}, {3, 2}, {2, 5}});
  EXPECT_DOUBLE_EQ(box.min_lng, 1);
  EXPECT_DOUBLE_EQ(box.max_lng, 3);
  EXPECT_DOUBLE_EQ(box.max_lat, 5);
  EXPECT_TRUE(box.Contains({2, 3}));
  EXPECT_FALSE(box.Contains({0, 3}));
  BoundingBox big = box.Inflated(0.5);
  EXPECT_TRUE(big.Contains({0.5, 0.5}));
}

TEST(GridTest, MakeRejectsBadInput) {
  BoundingBox box{0, 0, 1, 1};
  EXPECT_FALSE(Grid::Make(box, 0).ok());
  EXPECT_FALSE(Grid::Make(BoundingBox{0, 0, 0, 1}, 10).ok());
  EXPECT_TRUE(Grid::Make(box, 10).ok());
}

TEST(GridTest, LocateCornersAndCenter) {
  Grid grid = Grid::Make(BoundingBox{0, 0, 10, 10}, 5).ValueOrDie();
  EXPECT_EQ(grid.Locate({0.1, 0.1}), (Cell{0, 0}));
  EXPECT_EQ(grid.Locate({9.9, 9.9}), (Cell{4, 4}));
  EXPECT_EQ(grid.Locate({5.1, 3.1}), (Cell{1, 2}));
}

TEST(GridTest, LocateClampsOutsidePoints) {
  Grid grid = Grid::Make(BoundingBox{0, 0, 10, 10}, 5).ValueOrDie();
  EXPECT_EQ(grid.Locate({-5, 50}), (Cell{4, 0}));
}

TEST(GridTest, CellIndexRoundTrip) {
  Grid grid = Grid::Make(BoundingBox{0, 0, 1, 1}, 7).ValueOrDie();
  for (int64_t i = 0; i < grid.num_cells(); ++i) {
    EXPECT_EQ(grid.CellIndex(grid.CellAt(i)), i);
  }
}

TEST(GridTest, CellCenterLocatesToSameCell) {
  Grid grid = Grid::Make(BoundingBox{3, 4, 13, 24}, 9).ValueOrDie();
  for (int64_t i = 0; i < grid.num_cells(); ++i) {
    Cell c = grid.CellAt(i);
    EXPECT_EQ(grid.Locate(grid.CellCenter(c)), c);
  }
}

TEST(GridTest, NormalizedRange) {
  Grid grid = Grid::Make(BoundingBox{0, 0, 10, 10}, 5).ValueOrDie();
  double nx, ny;
  grid.Normalized({0, 0}, &nx, &ny);
  EXPECT_DOUBLE_EQ(nx, -1);
  EXPECT_DOUBLE_EQ(ny, -1);
  grid.Normalized({10, 5}, &nx, &ny);
  EXPECT_DOUBLE_EQ(nx, 1);
  EXPECT_DOUBLE_EQ(ny, 0);
  grid.Normalized({100, -100}, &nx, &ny);  // clamped
  EXPECT_DOUBLE_EQ(nx, 1);
  EXPECT_DOUBLE_EQ(ny, -1);
}

Trajectory MakeTraj(std::vector<std::tuple<double, double, int64_t>> pts) {
  Trajectory t;
  for (auto [lng, lat, time] : pts) t.points.push_back({{lng, lat}, time});
  return t;
}

TEST(TrajectoryTest, DurationLengthInterval) {
  Trajectory t = MakeTraj({{104.0, 30.0, 100}, {104.01, 30.0, 160}, {104.02, 30.0, 250}});
  EXPECT_EQ(t.DurationSeconds(), 150);
  EXPECT_NEAR(t.LengthMeters(), 2 * 963, 20);  // ~963 m per 0.01 deg at lat 30
  EXPECT_DOUBLE_EQ(t.MeanSampleIntervalSeconds(), 75.0);
  EXPECT_EQ(t.MaxSampleIntervalSeconds(), 90);
}

TEST(TrajectoryTest, OdtExtraction) {
  Trajectory t = MakeTraj({{104.0, 30.0, 100}, {104.02, 30.01, 400}});
  OdtInput odt = OdtFromTrajectory(t);
  EXPECT_EQ(odt.departure_time, 100);
  EXPECT_EQ(odt.origin, (GpsPoint{104.0, 30.0}));
  EXPECT_EQ(odt.destination, (GpsPoint{104.02, 30.01}));
}

TEST(TrajectoryTest, NormalizedTimeOfDayRange) {
  EXPECT_DOUBLE_EQ(NormalizedTimeOfDay(0), -1.0);
  EXPECT_DOUBLE_EQ(NormalizedTimeOfDay(43200), 0.0);  // noon
  EXPECT_NEAR(NormalizedTimeOfDay(86399), 1.0, 1e-4);
  EXPECT_DOUBLE_EQ(NormalizedTimeOfDay(86400), -1.0);  // wraps
}

TEST(TrajectoryTest, FilterRules) {
  TrajectoryFilter f;
  // Too short in distance.
  Trajectory short_dist = MakeTraj({{104.0, 30.0, 0}, {104.001, 30.0, 400}});
  EXPECT_FALSE(f.Keep(short_dist));
  // Too short in time.
  Trajectory short_time = MakeTraj({{104.0, 30.0, 0}, {104.02, 30.0, 100}});
  EXPECT_FALSE(f.Keep(short_time));
  // Too long in time.
  Trajectory long_time = MakeTraj({{104.0, 30.0, 0}, {104.02, 30.0, 4000}});
  EXPECT_FALSE(f.Keep(long_time));
  // Sparse sampling (gap > 80 s).
  Trajectory sparse = MakeTraj(
      {{104.0, 30.0, 0}, {104.01, 30.0, 100}, {104.02, 30.0, 400}});
  EXPECT_FALSE(f.Keep(sparse));
  // Valid.
  Trajectory ok = MakeTraj({{104.0, 30.0, 0},
                            {104.005, 30.0, 75},
                            {104.01, 30.0, 150},
                            {104.015, 30.0, 225},
                            {104.02, 30.0, 305}});
  EXPECT_TRUE(f.Keep(ok));
}

TEST(TrajectoryTest, FilterTrajectoriesRemovesAndCounts) {
  TrajectoryFilter f;
  std::vector<Trajectory> ts;
  ts.push_back(MakeTraj({{104.0, 30.0, 0}, {104.001, 30.0, 400}}));  // reject
  ts.push_back(MakeTraj({{104.0, 30.0, 0},
                         {104.005, 30.0, 75},
                         {104.01, 30.0, 150},
                         {104.015, 30.0, 225},
                         {104.02, 30.0, 305}}));  // keep
  EXPECT_EQ(FilterTrajectories(&ts, f), 1);
  EXPECT_EQ(ts.size(), 1u);
}

TEST(TrajectoryTest, StatsComputation) {
  std::vector<Trajectory> ts;
  ts.push_back(MakeTraj({{104.0, 30.0, 0}, {104.01, 30.0, 600}}));
  ts.push_back(MakeTraj({{104.0, 30.0, 0}, {104.02, 30.0, 1200}}));
  DatasetStats s = ComputeStats(ts);
  EXPECT_EQ(s.num_trajectories, 2);
  EXPECT_DOUBLE_EQ(s.mean_travel_time_minutes, 15.0);
  EXPECT_GT(s.mean_travel_distance_meters, 900);
  EXPECT_GT(s.area_width_km, 1.0);
}

// ---- PiT construction -------------------------------------------------------

TEST(PitTest, EmptyPitAllMinusOne) {
  Pit pit(4);
  EXPECT_EQ(pit.NumVisited(), 0);
  for (int64_t c = 0; c < kPitChannels; ++c) {
    for (int64_t r = 0; r < 4; ++r) {
      for (int64_t col = 0; col < 4; ++col) EXPECT_EQ(pit.At(c, r, col), -1.0f);
    }
  }
}

TEST(PitTest, PaperExample2Channels) {
  // Example 2 of the paper: 3x3 grid, points at 9:00, 9:36, 12:00 in cells
  // (3,1), (2,2), (1,3) using the paper's 1-based (row from top?) — we place
  // them by GPS so the semantics (first-visit, ToD, offset) are what matters.
  Grid grid = Grid::Make(BoundingBox{0, 0, 3, 3}, 3).ValueOrDie();
  Trajectory t;
  t.points.push_back({{0.5, 0.5}, 9 * 3600});       // cell (0,0)
  t.points.push_back({{1.5, 1.5}, 9 * 3600 + 2160});  // cell (1,1) at 9:36
  t.points.push_back({{2.5, 2.5}, 12 * 3600});      // cell (2,2)
  Pit pit = Pit::Build(t, grid);
  EXPECT_EQ(pit.NumVisited(), 3);
  // ToD: 2*(9*3600)/86400 - 1 = -0.25 for the 9:00 point.
  EXPECT_NEAR(pit.At(kPitTimeOfDay, 0, 0), -0.25f, 1e-5);
  // ToD for 9:36 = 2*(9.6*3600)/86400 - 1 = -0.2.
  EXPECT_NEAR(pit.At(kPitTimeOfDay, 1, 1), -0.2f, 1e-5);
  // ToD for 12:00 = 0.
  EXPECT_NEAR(pit.At(kPitTimeOfDay, 2, 2), 0.0f, 1e-5);
  // Offsets: first point -1, midpoint 2*(36/180)-1 = -0.6, last +1.
  EXPECT_NEAR(pit.At(kPitTimeOffset, 0, 0), -1.0f, 1e-5);
  EXPECT_NEAR(pit.At(kPitTimeOffset, 1, 1), -0.6f, 1e-5);
  EXPECT_NEAR(pit.At(kPitTimeOffset, 2, 2), 1.0f, 1e-5);
  // Mask values.
  EXPECT_EQ(pit.At(kPitMask, 0, 0), 1.0f);
  EXPECT_EQ(pit.At(kPitMask, 0, 1), -1.0f);
}

TEST(PitTest, EarliestVisitWins) {
  Grid grid = Grid::Make(BoundingBox{0, 0, 2, 2}, 2).ValueOrDie();
  Trajectory t;
  t.points.push_back({{0.5, 0.5}, 1000});
  t.points.push_back({{1.5, 0.5}, 1100});
  t.points.push_back({{0.5, 0.5}, 1200});  // revisit of cell (0,0)
  Pit pit = Pit::Build(t, grid);
  // ToD of cell (0,0) must correspond to t=1000, not 1200.
  EXPECT_NEAR(pit.At(kPitTimeOfDay, 0, 0),
              static_cast<float>(NormalizedTimeOfDay(1000)), 1e-6);
  EXPECT_NEAR(pit.At(kPitTimeOffset, 0, 0), -1.0f, 1e-6);
}

TEST(PitTest, InterpolationFillsSkippedCells) {
  Grid grid = Grid::Make(BoundingBox{0, 0, 10, 1}, 10).ValueOrDie();
  Trajectory t;  // jumps across the whole row in one sample gap
  t.points.push_back({{0.5, 0.5}, 0});
  t.points.push_back({{9.5, 0.5}, 900});
  Pit sparse = Pit::Build(t, grid, /*interpolate=*/false);
  Pit dense = Pit::Build(t, grid, /*interpolate=*/true);
  EXPECT_EQ(sparse.NumVisited(), 2);
  EXPECT_EQ(dense.NumVisited(), 10);
}

TEST(PitTest, VisitedIndicesMatchesMask) {
  Grid grid = Grid::Make(BoundingBox{0, 0, 4, 4}, 4).ValueOrDie();
  Trajectory t;
  t.points.push_back({{0.5, 0.5}, 0});
  t.points.push_back({{2.5, 1.5}, 300});
  Pit pit = Pit::Build(t, grid);
  auto idx = pit.VisitedIndices();
  EXPECT_EQ(idx.size(), 2u);
  EXPECT_EQ(idx[0], 0);       // row 0, col 0
  EXPECT_EQ(idx[1], 1 * 4 + 2);  // row 1, col 2
}

TEST(PitTest, CanonicalizeSnapsMaskAndClamps) {
  Pit pit(2);
  pit.Set(kPitMask, 0, 0, 0.3f);       // -> 1
  pit.Set(kPitTimeOfDay, 0, 0, 1.7f);  // -> clamp to 1
  pit.Set(kPitMask, 1, 1, -0.2f);      // -> -1
  pit.Set(kPitTimeOfDay, 1, 1, 0.5f);  // -> forced to -1 (mask off)
  pit.Canonicalize();
  EXPECT_EQ(pit.At(kPitMask, 0, 0), 1.0f);
  EXPECT_EQ(pit.At(kPitTimeOfDay, 0, 0), 1.0f);
  EXPECT_EQ(pit.At(kPitMask, 1, 1), -1.0f);
  EXPECT_EQ(pit.At(kPitTimeOfDay, 1, 1), -1.0f);
}

TEST(PitTest, FromTensorValidation) {
  EXPECT_FALSE(Pit::FromTensor(Tensor::Zeros({2, 4, 4})).ok());
  EXPECT_FALSE(Pit::FromTensor(Tensor::Zeros({3, 4, 5})).ok());
  EXPECT_TRUE(Pit::FromTensor(Tensor::Zeros({3, 4, 4})).ok());
}

TEST(PitTest, ComparePitsIdenticalIsZero) {
  Grid grid = Grid::Make(BoundingBox{0, 0, 4, 4}, 4).ValueOrDie();
  Trajectory t;
  t.points.push_back({{0.5, 0.5}, 0});
  t.points.push_back({{3.5, 3.5}, 600});
  Pit pit = Pit::Build(t, grid);
  PitError e = ComparePits(pit, pit);
  EXPECT_DOUBLE_EQ(e.overall_rmse, 0.0);
  EXPECT_DOUBLE_EQ(e.overall_mae, 0.0);
}

TEST(PitTest, ComparePitsKnownDifference) {
  Pit a(2), b(2);
  a.Set(kPitMask, 0, 0, 1.0f);  // one cell differs by 2 in one channel
  PitError e = ComparePits(a, b);
  // overall: sq = 4 over 12 values -> rmse = sqrt(1/3)
  EXPECT_NEAR(e.overall_rmse, std::sqrt(4.0 / 12.0), 1e-9);
  EXPECT_NEAR(e.channel_rmse[kPitMask], 1.0, 1e-9);  // sqrt(4/4)
  EXPECT_NEAR(e.channel_mae[kPitMask], 0.5, 1e-9);
}

TEST(PitTest, RouteAccuracyPerfectAndPartial) {
  Pit truth(3);
  truth.Set(kPitMask, 0, 0, 1.0f);
  truth.Set(kPitMask, 1, 1, 1.0f);
  RouteAccuracy perfect = CompareRoutes(truth, truth);
  EXPECT_DOUBLE_EQ(perfect.f1, 1.0);

  Pit pred(3);
  pred.Set(kPitMask, 0, 0, 1.0f);   // true positive
  pred.Set(kPitMask, 2, 2, 1.0f);   // false positive
  RouteAccuracy a = CompareRoutes(pred, truth);
  EXPECT_DOUBLE_EQ(a.precision, 0.5);
  EXPECT_DOUBLE_EQ(a.recall, 0.5);
  EXPECT_DOUBLE_EQ(a.f1, 0.5);
}

TEST(PitTest, EncodeOdtRangeAndTime) {
  Grid grid = Grid::Make(BoundingBox{0, 0, 10, 10}, 5).ValueOrDie();
  OdtInput odt{{0, 0}, {10, 10}, 43200};
  auto v = EncodeOdt(odt, grid);
  ASSERT_EQ(v.size(), 5u);
  EXPECT_FLOAT_EQ(v[0], -1.0f);
  EXPECT_FLOAT_EQ(v[1], -1.0f);
  EXPECT_FLOAT_EQ(v[2], 1.0f);
  EXPECT_FLOAT_EQ(v[3], 1.0f);
  EXPECT_FLOAT_EQ(v[4], 0.0f);  // noon
}

TEST(PitTest, RenderMaskShape) {
  Pit pit(3);
  pit.Set(kPitMask, 0, 1, 1.0f);
  std::string s = pit.RenderMask();
  // 3 rows of 3 chars + newlines; row 0 rendered last (south at bottom).
  EXPECT_EQ(s, "...\n...\n.#.\n");
}

}  // namespace
}  // namespace dot
