// Wire-protocol tests for the serving front-end: encode/decode roundtrips
// for every message type, incremental frame parsing under arbitrary
// fragmentation, and malformed-frame handling (truncated header, oversized
// length prefix, garbage payloads, torn writes via the serve.write_frame
// failpoint) — a hostile byte stream must yield typed errors, never UB.

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/protocol.h"
#include "util/failpoint.h"

namespace dot {
namespace serve {
namespace {

class ProtocolTest : public ::testing::Test {
 protected:
  void TearDown() override { fail::DisarmAll(); }
};

QueryRequest SampleRequest() {
  QueryRequest q;
  q.id = 0xDEADBEEFCAFEull;
  q.origin_lng = 104.0123456789;
  q.origin_lat = 30.6987654321;
  q.dest_lng = 104.1;
  q.dest_lat = 30.58;
  q.departure_time = 1541060400;
  q.deadline_ms = 75.5;
  return q;
}

TEST_F(ProtocolTest, QueryRequestRoundtrip) {
  QueryRequest q = SampleRequest();
  Result<Message> decoded = DecodePayload(EncodePayload(Message{q}));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const auto* got = std::get_if<QueryRequest>(&*decoded);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->id, q.id);
  EXPECT_EQ(got->origin_lng, q.origin_lng);  // bitwise: IEEE-754 passthrough
  EXPECT_EQ(got->origin_lat, q.origin_lat);
  EXPECT_EQ(got->dest_lng, q.dest_lng);
  EXPECT_EQ(got->dest_lat, q.dest_lat);
  EXPECT_EQ(got->departure_time, q.departure_time);
  EXPECT_EQ(got->deadline_ms, q.deadline_ms);
}

TEST_F(ProtocolTest, QueryResponseRoundtrip) {
  QueryResponse r;
  r.id = 42;
  r.code = static_cast<uint8_t>(StatusCode::kResourceExhausted);
  r.quality = 2;
  r.minutes = 17.25;
  r.message = "server overloaded: queue full";
  Result<Message> decoded = DecodePayload(EncodePayload(Message{r}));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const auto* got = std::get_if<QueryResponse>(&*decoded);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->id, r.id);
  EXPECT_EQ(got->code, r.code);
  EXPECT_EQ(got->quality, r.quality);
  EXPECT_EQ(got->minutes, r.minutes);
  EXPECT_EQ(got->message, r.message);
}

TEST_F(ProtocolTest, EmptyMessageResponseRoundtrip) {
  QueryResponse r;
  r.id = 7;
  r.minutes = 3.5;
  Result<Message> decoded = DecodePayload(EncodePayload(Message{r}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(std::get<QueryResponse>(*decoded).message.empty());
}

TEST_F(ProtocolTest, OverlongErrorMessageIsTruncatedOnTheWire) {
  QueryResponse r;
  r.id = 1;
  r.code = static_cast<uint8_t>(StatusCode::kInternal);
  r.message = std::string(4 * kMaxErrorMessage, 'x');
  Result<Message> decoded = DecodePayload(EncodePayload(Message{r}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<QueryResponse>(*decoded).message.size(),
            kMaxErrorMessage);
}

TEST_F(ProtocolTest, PingPongRoundtrip) {
  Result<Message> ping = DecodePayload(EncodePayload(Message{Ping{99}}));
  Result<Message> pong = DecodePayload(EncodePayload(Message{Pong{100}}));
  ASSERT_TRUE(ping.ok());
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(std::get<Ping>(*ping).id, 99u);
  EXPECT_EQ(std::get<Pong>(*pong).id, 100u);
}

TEST_F(ProtocolTest, DecodeRejectsGarbage) {
  EXPECT_TRUE(DecodePayload({}).status().IsInvalidArgument());
  // Unknown type byte.
  EXPECT_TRUE(DecodePayload({0x7F, 1, 2, 3}).status().IsInvalidArgument());
  EXPECT_TRUE(DecodePayload({0}).status().IsInvalidArgument());
  // Right type, wrong sizes.
  std::vector<uint8_t> req = EncodePayload(Message{SampleRequest()});
  req.pop_back();
  EXPECT_TRUE(DecodePayload(req).status().IsInvalidArgument());
  req.push_back(0);
  req.push_back(0);
  EXPECT_TRUE(DecodePayload(req).status().IsInvalidArgument());
  // Response whose message length overruns the payload.
  QueryResponse r;
  r.id = 1;
  r.message = "abc";
  std::vector<uint8_t> resp = EncodePayload(Message{r});
  resp[19] = 200;  // lie about the message length
  EXPECT_TRUE(DecodePayload(resp).status().IsInvalidArgument());
}

TEST_F(ProtocolTest, DecodeNeverCrashesOnRandomPayloads) {
  std::mt19937_64 rng(20260807);
  for (int trial = 0; trial < 2000; ++trial) {
    size_t len = rng() % 80;
    std::vector<uint8_t> payload(len);
    for (auto& b : payload) b = static_cast<uint8_t>(rng());
    Result<Message> decoded = DecodePayload(payload);  // must not crash
    if (!decoded.ok()) {
      EXPECT_TRUE(decoded.status().IsInvalidArgument());
    }
  }
}

TEST_F(ProtocolTest, FrameReaderReassemblesByteByByte) {
  std::vector<uint8_t> stream;
  std::vector<Message> sent = {Message{SampleRequest()}, Message{Ping{5}},
                               Message{Pong{6}}};
  for (const Message& m : sent) {
    std::vector<uint8_t> f = EncodeFrame(m);
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameReader reader;
  std::vector<std::vector<uint8_t>> out;
  std::vector<uint8_t> payload;
  for (uint8_t b : stream) {  // worst-case fragmentation: one byte per Feed
    ASSERT_TRUE(reader.Feed(&b, 1).ok());
    while (reader.Next(&payload)) out.push_back(payload);
  }
  ASSERT_EQ(out.size(), sent.size());
  for (size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(out[i], EncodePayload(sent[i]));
  }
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST_F(ProtocolTest, FrameReaderTruncatedHeaderNeverYields) {
  FrameReader reader;
  uint8_t partial[3] = {57, 0, 0};  // 3 of the 4 length bytes
  ASSERT_TRUE(reader.Feed(partial, sizeof(partial)).ok());
  std::vector<uint8_t> payload;
  EXPECT_FALSE(reader.Next(&payload));
  EXPECT_EQ(reader.buffered(), 3u);
  EXPECT_TRUE(reader.status().ok());  // incomplete, not an error
}

TEST_F(ProtocolTest, FrameReaderPoisonsOnOversizedLength) {
  FrameReader reader;
  uint8_t header[4];
  uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(header, &huge, 4);
  EXPECT_FALSE(reader.Feed(header, 4).ok());
  EXPECT_TRUE(reader.status().IsInvalidArgument());
  std::vector<uint8_t> payload;
  EXPECT_FALSE(reader.Next(&payload));
  // Sticky: further feeds stay rejected.
  uint8_t b = 0;
  EXPECT_FALSE(reader.Feed(&b, 1).ok());
}

TEST_F(ProtocolTest, FrameReaderCompactsLongStreams) {
  // Many frames through one reader: the consumed prefix must be reclaimed,
  // not retained forever.
  FrameReader reader;
  std::vector<uint8_t> frame = EncodeFrame(Message{SampleRequest()});
  std::vector<uint8_t> payload;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(reader.Feed(frame.data(), frame.size()).ok());
    ASSERT_TRUE(reader.Next(&payload));
  }
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST_F(ProtocolTest, TornWriteLeavesIncompleteFrame) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  // First frame torn in half by the failpoint, second written intact: the
  // reader must never surface the torn frame, and the stream stays
  // undecodable from then on (framing has lost sync) without crashing.
  fail::Arm("serve.write_frame", fail::Action::kTruncate, /*count=*/1);
  ASSERT_TRUE(WriteFrame(fds[0], Message{SampleRequest()}).ok());
  ASSERT_TRUE(WriteFrame(fds[0], Message{Ping{1}}).ok());
  ::close(fds[0]);
  FrameReader reader;
  std::vector<uint8_t> buf(4096);
  ssize_t n;
  while ((n = ::read(fds[1], buf.data(), buf.size())) > 0) {
    reader.Feed(buf.data(), static_cast<size_t>(n));
  }
  ::close(fds[1]);
  std::vector<uint8_t> payload;
  while (reader.Next(&payload)) {
    // Any frame that does surface must decode to the original request, not
    // a hybrid of the torn bytes.
    Result<Message> decoded = DecodePayload(payload);
    if (decoded.ok()) {
      EXPECT_NE(std::get_if<QueryRequest>(&*decoded), nullptr);
    }
  }
  // The torn first frame holds the reader short of the second one.
  EXPECT_GT(reader.buffered(), 0u);
}

TEST_F(ProtocolTest, WriteFrameErrorFailpoint) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  fail::Arm("serve.write_frame", fail::Action::kError, /*count=*/1);
  EXPECT_TRUE(WriteFrame(fds[0], Message{Ping{1}}).IsIOError());
  EXPECT_TRUE(WriteFrame(fds[0], Message{Ping{2}}).ok());  // disarmed again
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST_F(ProtocolTest, MixedMessageStreamOverSocketpair) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ASSERT_TRUE(WriteFrame(fds[0], Message{Pong{31}}).ok());
  QueryResponse r;
  r.id = 11;
  r.minutes = 5.5;
  ASSERT_TRUE(WriteFrame(fds[0], Message{r}).ok());

  FrameReader reader;
  std::vector<uint8_t> buf(4096);
  ssize_t n = ::read(fds[1], buf.data(), buf.size());
  ASSERT_GT(n, 0);
  ASSERT_TRUE(reader.Feed(buf.data(), static_cast<size_t>(n)).ok());
  std::vector<uint8_t> payload;
  ASSERT_TRUE(reader.Next(&payload));
  Result<Message> first = DecodePayload(payload);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(std::get<Pong>(*first).id, 31u);
  ASSERT_TRUE(reader.Next(&payload));
  Result<Message> second = DecodePayload(payload);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(std::get<QueryResponse>(*second).id, 11u);
  ::close(fds[0]);
  ::close(fds[1]);
}

// --- Protocol V2: trace context + timing breakdown ------------------------

TEST_F(ProtocolTest, PlainRequestStillEncodesAsV1) {
  QueryRequest q = SampleRequest();  // trace_id == 0, flags == 0
  std::vector<uint8_t> payload = EncodePayload(Message{q});
  EXPECT_EQ(payload[0], static_cast<uint8_t>(MsgType::kQueryRequest));
  EXPECT_EQ(payload.size(), 57u);  // exact PR 6 bytes: old servers interop
}

TEST_F(ProtocolTest, V2RequestRoundtripCarriesTraceContext) {
  QueryRequest q = SampleRequest();
  q.trace_id = 0x1122334455667788ull;
  q.flags = kQueryFlagSampled | kQueryFlagWantBreakdown;
  std::vector<uint8_t> payload = EncodePayload(Message{q});
  EXPECT_EQ(payload[0], static_cast<uint8_t>(MsgType::kQueryRequestV2));
  EXPECT_EQ(payload.size(), 66u);
  Result<Message> decoded = DecodePayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const auto* got = std::get_if<QueryRequest>(&*decoded);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->id, q.id);
  EXPECT_EQ(got->deadline_ms, q.deadline_ms);
  EXPECT_EQ(got->trace_id, q.trace_id);
  EXPECT_EQ(got->flags, q.flags);
}

TEST_F(ProtocolTest, FlagsAloneUpgradeTheRequestToV2) {
  QueryRequest q = SampleRequest();
  q.flags = kQueryFlagWantBreakdown;  // trace_id stays 0
  std::vector<uint8_t> payload = EncodePayload(Message{q});
  EXPECT_EQ(payload[0], static_cast<uint8_t>(MsgType::kQueryRequestV2));
  Result<Message> decoded = DecodePayload(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(std::get<QueryRequest>(*decoded).flags, kQueryFlagWantBreakdown);
}

TEST_F(ProtocolTest, PlainResponseStillEncodesAsV1) {
  QueryResponse r;
  r.id = 9;
  r.minutes = 12.5;
  std::vector<uint8_t> payload = EncodePayload(Message{r});
  EXPECT_EQ(payload[0], static_cast<uint8_t>(MsgType::kQueryResponse));
  EXPECT_EQ(payload.size(), 21u);
}

TEST_F(ProtocolTest, V2ResponseRoundtripCarriesBreakdown) {
  QueryResponse r;
  r.id = 77;
  r.quality = 1;
  r.minutes = 23.75;
  r.message = "still carries a message";
  r.code = static_cast<uint8_t>(StatusCode::kDeadlineExceeded);
  r.has_breakdown = true;
  r.breakdown.queue_us = 120.5;
  r.breakdown.batch_wait_us = 310.25;
  r.breakdown.stage1_us = 90000.0;
  r.breakdown.stage2_us = 1500.0;
  r.breakdown.serialize_us = 12.0;
  std::vector<uint8_t> payload = EncodePayload(Message{r});
  EXPECT_EQ(payload[0], static_cast<uint8_t>(MsgType::kQueryResponseV2));
  Result<Message> decoded = DecodePayload(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  const auto* got = std::get_if<QueryResponse>(&*decoded);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->id, r.id);
  EXPECT_EQ(got->code, r.code);
  EXPECT_EQ(got->quality, r.quality);
  EXPECT_EQ(got->minutes, r.minutes);
  EXPECT_EQ(got->message, r.message);
  ASSERT_TRUE(got->has_breakdown);
  EXPECT_EQ(got->breakdown.queue_us, r.breakdown.queue_us);
  EXPECT_EQ(got->breakdown.batch_wait_us, r.breakdown.batch_wait_us);
  EXPECT_EQ(got->breakdown.stage1_us, r.breakdown.stage1_us);
  EXPECT_EQ(got->breakdown.stage2_us, r.breakdown.stage2_us);
  EXPECT_EQ(got->breakdown.serialize_us, r.breakdown.serialize_us);
}

TEST_F(ProtocolTest, TruncatedV2RequestIsRejected) {
  QueryRequest q = SampleRequest();
  q.trace_id = 42;
  std::vector<uint8_t> payload = EncodePayload(Message{q});
  payload.pop_back();  // drop the flags byte
  Result<Message> decoded = DecodePayload(payload);
  EXPECT_TRUE(decoded.status().IsInvalidArgument()) << decoded.status();
}

TEST_F(ProtocolTest, ShortV2ResponseIsRejected) {
  QueryResponse r;
  r.id = 5;
  r.has_breakdown = true;
  std::vector<uint8_t> payload = EncodePayload(Message{r});
  payload.resize(40);  // cut inside the breakdown block
  Result<Message> decoded = DecodePayload(payload);
  EXPECT_TRUE(decoded.status().IsInvalidArgument()) << decoded.status();
}

}  // namespace
}  // namespace serve
}  // namespace dot
