// Tests for the DDPM machinery: schedule properties, closed-form q-sampling,
// and the two reverse samplers.

#include "core/diffusion.h"

#include <cmath>

#include <gtest/gtest.h>

namespace dot {
namespace {

TEST(ScheduleTest, LinearBetasAndMonotoneAlphaBar) {
  DiffusionSchedule s(1000);
  EXPECT_NEAR(s.beta(0), 1e-4, 1e-9);
  EXPECT_NEAR(s.beta(999), 0.02, 1e-9);
  for (int64_t i = 1; i < 1000; ++i) {
    EXPECT_GT(s.beta(i), s.beta(i - 1));
    EXPECT_LT(s.alpha_bar(i), s.alpha_bar(i - 1));
  }
  EXPECT_NEAR(s.alpha(5), 1.0 - s.beta(5), 1e-12);
  // After the full schedule nearly all signal is destroyed (Eq. 5).
  EXPECT_LT(s.alpha_bar(999), 5e-2);
  EXPECT_GT(s.alpha_bar(0), 0.999);
}

TEST(ScheduleTest, ShortScheduleRescalesToReachNoise) {
  // The scaled-linear rule: betas grow by 1000/N so alpha_bar still decays
  // to ~0 over a short schedule.
  DiffusionSchedule s(100);
  EXPECT_EQ(s.num_steps(), 100);
  EXPECT_NEAR(s.beta(0), 1e-3, 1e-9);
  EXPECT_NEAR(s.beta(99), 0.2, 1e-9);
  EXPECT_LT(s.alpha_bar(99), 5e-2);
  // Explicit bounds still win.
  DiffusionSchedule custom(10, 1e-4, 0.02);
  EXPECT_NEAR(custom.beta(9), 0.02, 1e-9);
}

TEST(DiffusionTest, QSampleAtStepZeroBarelyPerturbs) {
  Diffusion d{DiffusionSchedule(1000)};
  Rng rng(1);
  Tensor x0 = Tensor::Full({2, 3, 4, 4}, 0.7f);
  Tensor eps = Tensor::Randn(x0.shape(), &rng);
  Tensor x1 = d.QSample(x0, {0, 0}, eps);
  for (int64_t i = 0; i < x1.numel(); ++i) {
    EXPECT_NEAR(x1.at(i), 0.7f, 0.1f);
  }
}

TEST(DiffusionTest, QSampleAtLastStepIsMostlyNoise) {
  Diffusion d{DiffusionSchedule(1000)};
  Rng rng(2);
  Tensor x0 = Tensor::Full({1, 3, 8, 8}, 1.0f);
  Tensor eps = Tensor::Randn(x0.shape(), &rng);
  Tensor xn = d.QSample(x0, {999}, eps);
  // Correlation with eps should dominate: x_n ~ sqrt(1-ab)*eps + tiny*x0.
  double dot_eps = 0, norm = 0;
  for (int64_t i = 0; i < xn.numel(); ++i) {
    dot_eps += xn.at(i) * eps.at(i);
    norm += eps.at(i) * eps.at(i);
  }
  EXPECT_NEAR(dot_eps / norm, std::sqrt(1.0 - d.schedule().alpha_bar(999)), 0.05);
}

TEST(DiffusionTest, QSampleMatchesClosedForm) {
  Diffusion d{DiffusionSchedule(100)};
  Rng rng(3);
  Tensor x0 = Tensor::Randn({1, 3, 2, 2}, &rng);
  Tensor eps = Tensor::Randn(x0.shape(), &rng);
  int64_t n = 42;
  Tensor xn = d.QSample(x0, {n}, eps);
  double ab = d.schedule().alpha_bar(n);
  for (int64_t i = 0; i < xn.numel(); ++i) {
    float expect = static_cast<float>(std::sqrt(ab)) * x0.at(i) +
                   static_cast<float>(std::sqrt(1 - ab)) * eps.at(i);
    EXPECT_NEAR(xn.at(i), expect, 1e-5);
  }
}

TEST(DiffusionTest, MakeTrainingExampleDrawsValidSteps) {
  Diffusion d{DiffusionSchedule(50)};
  Rng rng(4);
  Tensor x0 = Tensor::Zeros({8, 3, 4, 4});
  std::vector<int64_t> steps;
  Tensor eps;
  Tensor xn = d.MakeTrainingExample(x0, &rng, &steps, &eps);
  EXPECT_EQ(steps.size(), 8u);
  for (int64_t s : steps) {
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 50);
  }
  EXPECT_EQ(xn.shape(), x0.shape());
  EXPECT_EQ(eps.shape(), x0.shape());
}

/// A fake predictor that always predicts the exact noise that takes x toward
/// a constant image. Returning zero makes the sampler contract toward 0.
class ZeroPredictor : public NoisePredictor {
 public:
  Tensor PredictNoise(const Tensor& x, const std::vector<int64_t>&,
                      const Tensor&) const override {
    return Tensor::Zeros(x.shape());
  }
};

TEST(DiffusionTest, AncestralSamplerShapeAndFiniteness) {
  Diffusion d{DiffusionSchedule(20)};
  Rng rng(5);
  ZeroPredictor model;
  Tensor cond = Tensor::Zeros({2, 5});
  Tensor x = d.Sample(model, cond, {2, 3, 6, 6}, &rng);
  EXPECT_EQ(x.shape(), (std::vector<int64_t>{2, 3, 6, 6}));
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_TRUE(std::isfinite(x.at(i)));
}

TEST(DiffusionTest, StridedSamplerShapeAndDeterminismGivenSeed) {
  Diffusion d{DiffusionSchedule(100)};
  ZeroPredictor model;
  Tensor cond = Tensor::Zeros({1, 5});
  Rng rng1(7), rng2(7);
  Tensor a = d.SampleStrided(model, cond, {1, 3, 5, 5}, 10, &rng1);
  Tensor b = d.SampleStrided(model, cond, {1, 3, 5, 5}, 10, &rng2);
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(a.at(i), b.at(i));
}

TEST(DiffusionTest, StridedWithZeroNoisePredictionRecoversScaledStart) {
  // With eps_theta = 0, DDIM computes x0_hat = x / sqrt(ab) and re-scales;
  // the final output equals x_N / sqrt(ab_N) exactly after the single step.
  Diffusion d{DiffusionSchedule(100)};
  ZeroPredictor model;
  Tensor cond = Tensor::Zeros({1, 5});
  Rng rng(8);
  Tensor x = d.SampleStrided(model, cond, {1, 3, 4, 4}, 1, &rng);
  for (int64_t i = 0; i < x.numel(); ++i) EXPECT_TRUE(std::isfinite(x.at(i)));
}

/// A nontrivial batch-invariant predictor: per-sample elementwise scaling
/// plus a per-sample condition shift, so batched and single-sample calls
/// exercise the condition routing as well as the noise streams.
class AffinePredictor : public NoisePredictor {
 public:
  Tensor PredictNoise(const Tensor& x, const std::vector<int64_t>&,
                      const Tensor& cond) const override {
    Tensor out = Tensor::Empty(x.shape());
    int64_t b = x.size(0);
    int64_t per = x.numel() / b;
    for (int64_t i = 0; i < b; ++i) {
      float shift = 0.1f * cond.at(i * cond.size(1));
      for (int64_t j = 0; j < per; ++j) {
        out.data()[i * per + j] = 0.5f * x.data()[i * per + j] + shift;
      }
    }
    return out;
  }
};

/// Batch-vs-single equivalence: sampling B=4 in one call must be bitwise
/// identical to four B=1 calls drawn from the same parent RNG (the
/// serving-path property EstimateBatch/QueryBatch rely on).
TEST(DiffusionTest, AncestralBatchMatchesSingleSlices) {
  Diffusion d{DiffusionSchedule(15)};
  AffinePredictor model;
  Tensor cond = Tensor::Empty({4, 5});
  Rng cond_rng(11);
  for (int64_t i = 0; i < cond.numel(); ++i) {
    cond.at(i) = static_cast<float>(cond_rng.Uniform(-1, 1));
  }
  Rng rng_batch(21), rng_single(21);
  Tensor batched = d.Sample(model, cond, {4, 3, 5, 5}, &rng_batch);
  int64_t per = batched.numel() / 4;
  for (int64_t i = 0; i < 4; ++i) {
    Tensor ci = Tensor::Empty({1, 5});
    for (int64_t j = 0; j < 5; ++j) ci.at(j) = cond.at(i * 5 + j);
    Tensor single = d.Sample(model, ci, {1, 3, 5, 5}, &rng_single);
    for (int64_t j = 0; j < per; ++j) {
      ASSERT_EQ(batched.at(i * per + j), single.at(j))
          << "sample " << i << " element " << j;
    }
  }
}

TEST(DiffusionTest, StridedBatchMatchesSingleSlices) {
  Diffusion d{DiffusionSchedule(60)};
  AffinePredictor model;
  Tensor cond = Tensor::Empty({4, 5});
  Rng cond_rng(12);
  for (int64_t i = 0; i < cond.numel(); ++i) {
    cond.at(i) = static_cast<float>(cond_rng.Uniform(-1, 1));
  }
  Rng rng_batch(22), rng_single(22);
  Tensor batched = d.SampleStrided(model, cond, {4, 3, 5, 5}, 8, &rng_batch);
  int64_t per = batched.numel() / 4;
  for (int64_t i = 0; i < 4; ++i) {
    Tensor ci = Tensor::Empty({1, 5});
    for (int64_t j = 0; j < 5; ++j) ci.at(j) = cond.at(i * 5 + j);
    Tensor single = d.SampleStrided(model, ci, {1, 3, 5, 5}, 8, &rng_single);
    for (int64_t j = 0; j < per; ++j) {
      ASSERT_EQ(batched.at(i * per + j), single.at(j))
          << "sample " << i << " element " << j;
    }
  }
}

TEST(DiffusionTest, SamplersRunWithoutBuildingGraphs) {
  Diffusion d{DiffusionSchedule(10)};
  ZeroPredictor model;
  Tensor cond = Tensor::Zeros({1, 5});
  Rng rng(9);
  Tensor x = d.Sample(model, cond, {1, 3, 4, 4}, &rng);
  EXPECT_EQ(x.grad_fn(), nullptr);
}

}  // namespace
}  // namespace dot
