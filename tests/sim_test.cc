// Tests for the synthetic-city simulator: network shape, congestion model,
// trip generation phenomena (outliers, time-of-day effects), and Table-1
// style dataset statistics.

#include <memory>

#include <gtest/gtest.h>

#include "geo/pit.h"
#include "geo/trajectory.h"
#include "sim/city.h"
#include "sim/incidents.h"
#include "sim/trips.h"

namespace dot {
namespace {

TEST(CityTest, NetworkIsReasonablyDenseAndConnected) {
  City city(CityConfig::ChengduLike(), 1);
  const RoadNetwork& net = city.network();
  int64_t n = city.config().grid_nodes;
  EXPECT_EQ(net.num_nodes(), n * n);
  EXPECT_GT(net.num_edges(), 2 * n * n);  // most segments survive removal
  // Corner-to-corner must be routable.
  RoutingResult r = net.ShortestPath(0, net.num_nodes() - 1);
  EXPECT_TRUE(r.found());
}

TEST(CityTest, DeterministicUnderSeed) {
  City a(CityConfig::ChengduLike(), 7);
  City b(CityConfig::ChengduLike(), 7);
  EXPECT_EQ(a.network().num_edges(), b.network().num_edges());
  EXPECT_EQ(a.network().node(5).gps, b.network().node(5).gps);
}

TEST(CityTest, ExtentMatchesTableOne) {
  City city(CityConfig::ChengduLike(), 1);
  BoundingBox box = city.network().Bounds();
  // Paper Table 1: Chengdu area ~15.3 x 15.2 km.
  EXPECT_NEAR(box.WidthMeters() / 1000.0, 15.3, 1.5);
  EXPECT_NEAR(box.HeightMeters() / 1000.0, 15.2, 1.5);
  City harbin(CityConfig::HarbinLike(), 1);
  EXPECT_NEAR(harbin.network().Bounds().WidthMeters() / 1000.0, 18.7, 2.0);
}

TEST(TripDemandTest, GenerateDemandProducesServableQueries) {
  City city(CityConfig::ChengduLike(), 3);
  TripGenerator gen(&city, 11);
  TripConfig tc = TripConfig::ChengduLike();
  std::vector<OdtInput> odts = gen.GenerateDemand(200, tc);
  ASSERT_EQ(odts.size(), 200u);
  // Every query is answerable: endpoints inside the (slightly inflated)
  // city bounds, OD distance near the configured band, departure inside the
  // simulated window. GPS noise can push an endpoint a little past a node
  // on the boundary, hence the inflation and the distance slack.
  BoundingBox area = city.network().Bounds().Inflated(0.02);
  for (const OdtInput& odt : odts) {
    EXPECT_TRUE(area.Contains(odt.origin));
    EXPECT_TRUE(area.Contains(odt.destination));
    double dist = DistanceMeters(odt.origin, odt.destination);
    EXPECT_GE(dist, tc.min_od_meters - 100.0);
    EXPECT_LE(dist, tc.max_od_meters + 100.0);
    EXPECT_GE(odt.departure_time, tc.start_unix);
    EXPECT_LT(odt.departure_time, tc.start_unix + tc.num_days * 86400);
  }
}

TEST(TripDemandTest, GenerateDemandIsDeterministicUnderSeed) {
  City city(CityConfig::ChengduLike(), 3);
  TripGenerator a(&city, 11), b(&city, 11);
  TripConfig tc = TripConfig::ChengduLike();
  std::vector<OdtInput> da = a.GenerateDemand(32, tc);
  std::vector<OdtInput> db = b.GenerateDemand(32, tc);
  ASSERT_EQ(da.size(), db.size());
  for (size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].origin, db[i].origin);
    EXPECT_EQ(da[i].departure_time, db[i].departure_time);
  }
}

TEST(TripDemandTest, GenerateDemandFollowsDailyProfile) {
  City city(CityConfig::ChengduLike(), 3);
  TripGenerator gen(&city, 5);
  std::vector<OdtInput> odts =
      gen.GenerateDemand(600, TripConfig::ChengduLike());
  int64_t night = 0, evening_peak = 0;
  for (const OdtInput& odt : odts) {
    int64_t hour = SecondsOfDay(odt.departure_time) / 3600;
    if (hour >= 1 && hour < 5) ++night;
    if (hour >= 17 && hour < 20) ++evening_peak;
  }
  EXPECT_GT(evening_peak, night);  // rush hours dominate the small hours
}

TEST(CityTest, RushHourSlowsTraffic) {
  City city(CityConfig::ChengduLike(), 2);
  // Find one arterial and one street edge.
  int64_t arterial = -1, street = -1;
  for (int64_t e = 0; e < city.network().num_edges(); ++e) {
    if (city.IsArterial(e) && arterial < 0) arterial = e;
    if (!city.IsArterial(e) && street < 0) street = e;
  }
  ASSERT_GE(arterial, 0);
  ASSERT_GE(street, 0);
  // 3 AM free-flow vs 6 PM rush.
  EXPECT_GT(city.SpeedFactor(arterial, 3 * 3600),
            city.SpeedFactor(arterial, 18 * 3600));
  // Arterials are hit harder than side streets at rush hour.
  double arterial_drop = city.SpeedFactor(arterial, 3 * 3600) -
                         city.SpeedFactor(arterial, 18 * 3600);
  double street_drop =
      city.SpeedFactor(street, 3 * 3600) - city.SpeedFactor(street, 18 * 3600);
  EXPECT_GT(arterial_drop, street_drop);
}

TEST(CityTest, ExpectedEdgeSecondsIncreasesAtRush) {
  City city(CityConfig::HarbinLike(), 3);
  for (int64_t e = 0; e < 10; ++e) {
    EXPECT_GT(city.ExpectedEdgeSeconds(e, 18 * 3600),
              city.ExpectedEdgeSeconds(e, 3 * 3600));
  }
}

class TripGenerationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    city_ = new City(CityConfig::ChengduLike(), 11);
    gen_ = new TripGenerator(city_, 12);
    TripConfig cfg = TripConfig::ChengduLike();
    cfg.num_trips = 300;
    trips_ = new std::vector<SimulatedTrip>(gen_->Generate(cfg));
  }
  static void TearDownTestSuite() {
    delete trips_;
    delete gen_;
    delete city_;
    trips_ = nullptr;
    gen_ = nullptr;
    city_ = nullptr;
  }

  static City* city_;
  static TripGenerator* gen_;
  static std::vector<SimulatedTrip>* trips_;
};

City* TripGenerationTest::city_ = nullptr;
TripGenerator* TripGenerationTest::gen_ = nullptr;
std::vector<SimulatedTrip>* TripGenerationTest::trips_ = nullptr;

TEST_F(TripGenerationTest, GeneratesRequestedCount) {
  EXPECT_EQ(trips_->size(), 300u);
}

TEST_F(TripGenerationTest, TrajectoriesAreTimeOrdered) {
  for (const auto& trip : *trips_) {
    for (size_t i = 1; i < trip.trajectory.points.size(); ++i) {
      EXPECT_GE(trip.trajectory.points[i].time,
                trip.trajectory.points[i - 1].time);
    }
  }
}

TEST_F(TripGenerationTest, OutlierRateNearConfigured) {
  int64_t outliers = 0;
  for (const auto& trip : *trips_) outliers += trip.is_outlier ? 1 : 0;
  double rate = static_cast<double>(outliers) / static_cast<double>(trips_->size());
  EXPECT_GT(rate, 0.02);
  EXPECT_LT(rate, 0.16);
}

TEST_F(TripGenerationTest, OutliersAreSlowerThanNormalTripsSameOd) {
  // Aggregate: mean travel time of outliers should clearly exceed normals.
  double out_sum = 0, out_n = 0, norm_sum = 0, norm_n = 0;
  for (const auto& trip : *trips_) {
    double per_meter = static_cast<double>(trip.trajectory.DurationSeconds()) /
                       std::max(1.0, trip.trajectory.LengthMeters());
    if (trip.is_outlier) {
      out_sum += per_meter;
      out_n += 1;
    } else {
      norm_sum += per_meter;
      norm_n += 1;
    }
  }
  ASSERT_GT(out_n, 0);
  ASSERT_GT(norm_n, 0);
  // Outliers drive longer paths for the same OD; per straight-line meter of
  // displacement they spend more time. Compare duration per OD displacement.
  double out_ratio = 0, norm_ratio = 0;
  out_n = norm_n = 0;
  for (const auto& trip : *trips_) {
    double direct = DistanceMeters(trip.odt.origin, trip.odt.destination);
    double r = static_cast<double>(trip.trajectory.DurationSeconds()) /
               std::max(1.0, direct);
    if (trip.is_outlier) {
      out_ratio += r;
      out_n += 1;
    } else {
      norm_ratio += r;
      norm_n += 1;
    }
  }
  EXPECT_GT(out_ratio / out_n, 1.3 * (norm_ratio / norm_n));
}

TEST_F(TripGenerationTest, EdgePathsAreConnected) {
  const RoadNetwork& net = city_->network();
  for (const auto& trip : *trips_) {
    for (size_t i = 1; i < trip.edge_path.size(); ++i) {
      EXPECT_EQ(net.edge(trip.edge_path[i - 1]).to, net.edge(trip.edge_path[i]).from);
    }
  }
}

TEST_F(TripGenerationTest, GpsPointsStayNearDrivenPath) {
  const RoadNetwork& net = city_->network();
  const auto& trip = (*trips_)[0];
  for (const auto& p : trip.trajectory.points) {
    double best = 1e18;
    for (int64_t eid : trip.edge_path) {
      best = std::min(best, DistanceMeters(p.gps, net.node(net.edge(eid).from).gps));
      best = std::min(best, DistanceMeters(p.gps, net.node(net.edge(eid).to).gps));
    }
    // Within an edge length plus noise of some path node.
    EXPECT_LT(best, 1200);
  }
}

TEST_F(TripGenerationTest, FilteredStatsRoughlyMatchTableOne) {
  std::vector<Trajectory> trajs;
  for (const auto& t : *trips_) trajs.push_back(t.trajectory);
  TrajectoryFilter filter;
  filter.max_sample_interval_seconds = 80;
  FilterTrajectories(&trajs, filter);
  ASSERT_GT(trajs.size(), 150u);  // most trips survive
  DatasetStats s = ComputeStats(trajs);
  // Paper Chengdu: 13.7 min mean travel time, 3283 m distance, 29 s interval.
  // Wide tolerances: we check the order of magnitude, not the digits.
  EXPECT_GT(s.mean_travel_time_minutes, 6);
  EXPECT_LT(s.mean_travel_time_minutes, 30);
  EXPECT_GT(s.mean_travel_distance_meters, 1500);
  EXPECT_LT(s.mean_travel_distance_meters, 9500);
  EXPECT_NEAR(s.mean_sample_interval_seconds, 29, 12);
}

TEST_F(TripGenerationTest, DepartureProfileHasPeaks) {
  TripGenerator gen(city_, 99);
  int64_t rush = 0, night = 0;
  for (int i = 0; i < 2000; ++i) {
    int64_t sod = gen.SampleSecondsOfDay();
    int64_t hour = sod / 3600;
    if (hour >= 7 && hour <= 9) ++rush;
    if (hour >= 1 && hour <= 4) ++night;
  }
  EXPECT_GT(rush, 3 * night);
}

TEST_F(TripGenerationTest, SameOdPitsMoreSimilarThanOutlierPit) {
  // The Fig. 1 phenomenon: two normal trips between the same endpoints have
  // closer PiTs than a normal trip and an outlier detour.
  const RoadNetwork& net = city_->network();
  Grid grid = Grid::Make(net.Bounds().Inflated(0.02), 20).ValueOrDie();
  // Scan generated trips for pairs sharing (approximately) the same OD and
  // compare PiT overlap between normal/normal and normal/outlier pairs.
  double normal_pair_f1 = 0;
  int64_t pairs = 0;
  double outlier_pair_f1 = 0;
  int64_t outlier_pairs = 0;
  for (size_t i = 0; i < trips_->size(); ++i) {
    for (size_t j = i + 1; j < trips_->size(); ++j) {
      const auto& a = (*trips_)[i];
      const auto& b = (*trips_)[j];
      if (DistanceMeters(a.odt.origin, b.odt.origin) > 500) continue;
      if (DistanceMeters(a.odt.destination, b.odt.destination) > 500) continue;
      Pit pa = Pit::Build(a.trajectory, grid, true);
      Pit pb = Pit::Build(b.trajectory, grid, true);
      double f1 = CompareRoutes(pa, pb).f1;
      if (!a.is_outlier && !b.is_outlier) {
        normal_pair_f1 += f1;
        ++pairs;
      } else if (a.is_outlier != b.is_outlier) {
        outlier_pair_f1 += f1;
        ++outlier_pairs;
      }
    }
  }
  if (pairs > 3 && outlier_pairs > 0) {
    EXPECT_GT(normal_pair_f1 / static_cast<double>(pairs),
              outlier_pair_f1 / static_cast<double>(outlier_pairs));
  }
}

TEST(IncidentTest, WindowIsHalfOpenAndClampsAtBoundaries) {
  City city(CityConfig::ChengduLike(), 5);
  const int64_t t0 = 1541030400 + 10 * 3600;  // day 0, 10:00
  const int64_t t1 = t0 + 2 * 3600;
  Incident weather;
  weather.kind = IncidentKind::kWeather;
  weather.start_unix = t0;
  weather.end_unix = t1;
  weather.radius_meters = 0;  // city-wide
  weather.severity = 1.0;
  EXPECT_FALSE(weather.Active(t0 - 1));
  EXPECT_TRUE(weather.Active(t0));      // inclusive start
  EXPECT_TRUE(weather.Active(t1 - 1));
  EXPECT_FALSE(weather.Active(t1));     // exclusive end

  auto sched = std::make_shared<IncidentSchedule>();
  sched->Add(weather);
  city.SetIncidents(sched);
  // Outside the window every unix-time query reduces to the clear-day
  // model bitwise; inside, the edge is strictly slower.
  double clear = city.ExpectedEdgeSeconds(0, SecondsOfDay(t0 - 1));
  EXPECT_EQ(city.ExpectedEdgeSecondsAt(0, t0 - 1), clear);
  EXPECT_EQ(city.ExpectedEdgeSecondsAt(0, t1),
            city.ExpectedEdgeSeconds(0, SecondsOfDay(t1)));
  EXPECT_GT(city.ExpectedEdgeSecondsAt(0, t0),
            city.ExpectedEdgeSeconds(0, SecondsOfDay(t0)));
  EXPECT_GT(city.ExpectedEdgeSecondsAt(0, t1 - 1),
            city.ExpectedEdgeSeconds(0, SecondsOfDay(t1 - 1)));

  // No schedule at all: the unix-time overload is the seconds-of-day one.
  city.SetIncidents(nullptr);
  EXPECT_EQ(city.ExpectedEdgeSecondsAt(0, t0 + 60),
            city.ExpectedEdgeSeconds(0, SecondsOfDay(t0 + 60)));
}

TEST(IncidentTest, ClosureClampsCongestionFactorAtFloor) {
  City city(CityConfig::ChengduLike(), 5);
  const int64_t t0 = 1541030400 + 3 * 3600;  // off-peak: SpeedFactor near 1
  Incident closure;
  closure.kind = IncidentKind::kClosure;
  closure.start_unix = t0;
  closure.end_unix = t0 + 3600;
  closure.radius_meters = 0;  // close everything for the assertion
  closure.severity = 1.0;
  auto sched = std::make_shared<IncidentSchedule>();
  sched->Add(closure);
  city.SetIncidents(sched);
  for (int64_t e = 0; e < 8; ++e) {
    // Severity-1 closure collapses the modifier below the serving clamp;
    // the factor must bottom out at exactly 0.05, never reach zero.
    EXPECT_EQ(city.CongestionFactor(e, t0 + 100), 0.05);
    EXPECT_GT(city.CongestionFactor(e, t0 - 100), 0.25);
    // Traversal stays finite: speed is floored before dividing.
    EXPECT_LT(city.ExpectedEdgeSecondsAt(e, t0 + 100),
              30.0 * city.ExpectedEdgeSecondsAt(e, t0 - 100));
  }
}

TEST(IncidentTest, SurgeDemandIsDeterministicAndShiftsIntoWindow) {
  City city(CityConfig::ChengduLike(), 5);
  TripConfig tc = TripConfig::ChengduLike();
  // Surge over every 18:00-20:00 evening window of day 2.
  const int64_t t0 = tc.start_unix + 2 * 86400 + 18 * 3600;
  const int64_t t1 = t0 + 2 * 3600;
  Incident surge;
  surge.kind = IncidentKind::kSurge;
  surge.start_unix = t0;
  surge.end_unix = t1;
  surge.radius_meters = 0;
  surge.severity = 1.0;  // 3x demand
  auto sched = std::make_shared<IncidentSchedule>();
  sched->Add(surge);

  auto in_window_share = [&](int64_t seed) {
    TripGenerator gen(&city, static_cast<uint64_t>(seed));
    std::vector<OdtInput> odts = gen.GenerateDemand(600, tc);
    int64_t hits = 0;
    for (const auto& o : odts) {
      if (o.departure_time >= t0 && o.departure_time < t1) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(odts.size());
  };

  double baseline = in_window_share(23);
  city.SetIncidents(sched);
  double surged = in_window_share(23);
  EXPECT_GT(surged, baseline);

  // Same seed, same schedule: the surged stream is bitwise reproducible.
  TripGenerator a(&city, 23), b(&city, 23);
  std::vector<OdtInput> da = a.GenerateDemand(200, tc);
  std::vector<OdtInput> db = b.GenerateDemand(200, tc);
  ASSERT_EQ(da.size(), db.size());
  for (size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].departure_time, db[i].departure_time);
    EXPECT_EQ(da[i].origin, db[i].origin);
    EXPECT_EQ(da[i].destination, db[i].destination);
  }
}

}  // namespace
}  // namespace dot
