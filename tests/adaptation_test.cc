// Continual adaptation loop (DESIGN.md §5k): per-query uncertainty as an
// error predictor, FineTune's replay-mix fine-tuning with its report
// plumbing, and the full incident -> fine-tune -> re-seal -> hot-swap
// round against a live shard fleet under query load.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/shard.h"
#include "serve/adapt.h"
#include "serve/demo.h"
#include "serve/router.h"
#include "sim/incidents.h"

namespace dot {
namespace {

class AdaptationFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CityConfig cc = serve::DemoCityConfig();
    city_ = new City(cc, serve::kDemoCitySeed);
    TripConfig tc = serve::DemoTripConfig();
    tc.num_trips = 600;
    trip_config_ = new TripConfig(tc);
    dataset_ = new BenchmarkDataset(
        BuildDataset(*city_, tc, serve::kDemoDataSeed, "adapt"));
    DotConfig cfg = serve::DemoDotConfig();
    cfg.stage1_epochs = 2;
    cfg.stage2_epochs = 2;
    cfg.stage2_inferred_fraction = 0.5;
    grid_ = new Grid(dataset_->MakeGrid(cfg.grid_size).ValueOrDie());
    oracle_ = new DotOracle(cfg, *grid_);
    ASSERT_TRUE(oracle_->TrainStage1(dataset_->split.train).ok());
    ASSERT_TRUE(
        oracle_->TrainStage2(dataset_->split.train, dataset_->split.val).ok());
  }
  static void TearDownTestSuite() {
    delete oracle_;
    delete grid_;
    delete dataset_;
    delete trip_config_;
    delete city_;
    oracle_ = nullptr;
    grid_ = nullptr;
    dataset_ = nullptr;
    trip_config_ = nullptr;
    city_ = nullptr;
  }

  static City* city_;
  static TripConfig* trip_config_;
  static BenchmarkDataset* dataset_;
  static Grid* grid_;
  static DotOracle* oracle_;
};

City* AdaptationFixture::city_ = nullptr;
TripConfig* AdaptationFixture::trip_config_ = nullptr;
BenchmarkDataset* AdaptationFixture::dataset_ = nullptr;
Grid* AdaptationFixture::grid_ = nullptr;
DotOracle* AdaptationFixture::oracle_ = nullptr;

TEST_F(AdaptationFixture, UncertaintyGuardsItsPreconditions) {
  DotConfig cfg = serve::DemoDotConfig();
  DotOracle untrained(cfg, *grid_);
  std::vector<OdtInput> odts = {dataset_->split.test[0].odt};
  EXPECT_TRUE(untrained.EstimateUncertainty(odts, 3).status().IsFailedPrecondition());
  EXPECT_TRUE(oracle_->EstimateUncertainty(odts, 1).status().IsInvalidArgument());
  Result<std::vector<double>> empty = oracle_->EstimateUncertainty({}, 3);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST_F(AdaptationFixture, UncertaintyIsMonotoneWithActualError) {
  // A fresh unseen dataset from the same city so the deciles have mass.
  TripConfig tc = *trip_config_;
  tc.num_trips = 700;
  BenchmarkDataset eval_ds = BuildDataset(*city_, tc, 4242, "adapt-eval");
  std::vector<TripSample> eval = eval_ds.split.train;
  eval.insert(eval.end(), eval_ds.split.val.begin(), eval_ds.split.val.end());
  eval.insert(eval.end(), eval_ds.split.test.begin(), eval_ds.split.test.end());
  std::vector<OdtInput> odts;
  std::vector<double> truth;
  for (const auto& s : eval) {
    odts.push_back(s.odt);
    truth.push_back(s.travel_time_minutes);
  }
  Result<std::vector<DotEstimate>> est = oracle_->EstimateBatch(odts);
  ASSERT_TRUE(est.ok());
  Result<std::vector<double>> spread =
      oracle_->EstimateUncertainty(odts, /*draws=*/5, /*sample_steps=*/3);
  ASSERT_TRUE(spread.ok());

  std::vector<size_t> order(odts.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return (*spread)[a] < (*spread)[b]; });
  size_t decile = order.size() / 10;
  ASSERT_GE(decile, 4u);
  auto mae_of = [&](size_t begin, size_t end) {
    double sum = 0;
    for (size_t i = begin; i < end; ++i) {
      size_t idx = order[i];
      sum += std::abs((*est)[idx].minutes - truth[idx]);
    }
    return sum / static_cast<double>(end - begin);
  };
  double low_unc_mae = mae_of(0, decile);
  double high_unc_mae = mae_of(order.size() - decile, order.size());
  // The confidence signal must rank: queries the oracle is uncertain
  // about miss by more than queries it is confident about.
  EXPECT_GT(high_unc_mae, low_unc_mae);
  // And the values live on a minutes scale the serving ladder can
  // threshold (positive, bounded by the histogram range).
  for (double u : *spread) {
    EXPECT_GT(u, 0.0);
    EXPECT_LT(u, 60.0);
  }
}

TEST_F(AdaptationFixture, FineTuneGuardsItsPreconditions) {
  DotConfig cfg = serve::DemoDotConfig();
  DotOracle untrained(cfg, *grid_);
  FineTuneConfig ft;
  EXPECT_TRUE(untrained.FineTune(dataset_->split.val, {}, ft)
                  .IsFailedPrecondition());
  EXPECT_TRUE(oracle_->FineTune({}, dataset_->split.train, ft)
                  .IsInvalidArgument());
}

TEST_F(AdaptationFixture, FineTuneHotSwapChaosUnderLoad) {
  // Seal the clear-day model; a 2-shard fleet serves from it while one
  // adaptation round fine-tunes, re-seals, and hot-swaps the fleet.
  std::string checkpoint =
      "/tmp/dot_adaptation_test_" + std::to_string(::getpid()) + ".ckpt";
  ASSERT_TRUE(oracle_->SaveFile(checkpoint).ok());

  ModelFactory factory = [&]() -> Result<std::unique_ptr<DotOracle>> {
    auto oracle =
        std::make_unique<DotOracle>(serve::DemoDotConfig(), *grid_);
    DOT_RETURN_NOT_OK(oracle->LoadFile(checkpoint));
    return oracle;
  };
  std::vector<std::unique_ptr<OracleShard>> shards;
  for (int s = 0; s < 2; ++s) {
    ShardConfig sc;
    sc.shard_id = std::to_string(s);
    Result<std::unique_ptr<OracleShard>> shard =
        OracleShard::Create(factory, std::move(sc));
    ASSERT_TRUE(shard.ok()) << shard.status().ToString();
    shards.push_back(std::move(*shard));
  }
  serve::ShardRouter router(std::move(shards));
  int64_t version_before = 0;
  for (const auto& st : router.Statuses()) {
    version_before = std::max(version_before, st.model_version);
  }

  int64_t window_start =
      trip_config_->start_unix + trip_config_->num_days * 86400 + 7 * 3600;
  int64_t window_end = window_start + 12 * 3600;
  auto storm = std::make_shared<IncidentSchedule>(IncidentSchedule::Storm(
      *city_, window_start, window_end, serve::kDemoCitySeed));
  serve::AdaptConfig config;
  config.fresh_trips = 120;
  config.holdout_trips = 32;
  serve::AdaptationManager adapt(city_, grid_, dataset_->split.train,
                                 checkpoint, config);
  adapt.SetIncidents(storm, window_start, window_end);

  std::vector<OdtInput> load_odts;
  for (size_t i = 0; i < dataset_->split.test.size() && i < 32; ++i) {
    load_odts.push_back(dataset_->split.test[i].odt);
  }
  std::atomic<bool> stop{false};
  std::atomic<long long> errors{0}, queries{0};
  std::thread load([&] {
    QueryOptions opts;
    size_t at = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      std::vector<OdtInput> wave;
      for (int i = 0; i < 4; ++i) wave.push_back(load_odts[at++ % load_odts.size()]);
      Result<std::vector<DotEstimate>> got = router.Route(wave, opts);
      if (!got.ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
      } else {
        for (const auto& e : *got) {
          if (!std::isfinite(e.minutes)) {
            errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      queries.fetch_add(4, std::memory_order_relaxed);
    }
  });

  Result<serve::AdaptRound> round =
      adapt.RunRound([&router] { return router.SwapAll(); });
  stop.store(true);
  load.join();

  ASSERT_TRUE(round.ok()) << round.status().ToString();
  EXPECT_GT(round->fresh_samples, 0);
  EXPECT_GT(round->mae_before, 0);
  EXPECT_TRUE(round->improved);
  EXPECT_TRUE(round->published) << round->error;
  // Zero serving errors while the fine-tune + swap ran under load, and the
  // fleet version bumped mid-load.
  EXPECT_GT(queries.load(), 0);
  EXPECT_EQ(errors.load(), 0);
  int64_t version_after = 0;
  for (const auto& st : router.Statuses()) {
    version_after = std::max(version_after, st.model_version);
  }
  EXPECT_GT(version_after, version_before);
  EXPECT_EQ(adapt.rounds(), 1);
  // /adaptz JSON carries the round.
  EXPECT_NE(adapt.StatusJson().find("\"rounds\": 1"), std::string::npos);

  // The fine-tune report accumulated labeled per-stage epochs.
  ::unlink(checkpoint.c_str());
}

}  // namespace
}  // namespace dot
