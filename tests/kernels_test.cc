// Property tests for the raw linear-algebra kernels against a naive
// reference implementation, plus broadcast-shape rules.

#include <cstdlib>

#include <gtest/gtest.h>

#include "tensor/gemm_kernel.h"
#include "tensor/ops.h"
#include "tensor/ops_internal.h"

namespace dot {
namespace {

// Force a multi-worker pool before the lazily-constructed global pool is
// first touched, so the parallel GEMM/conv partitioning paths are exercised
// even on single-core CI boxes. The kernels are deterministic by
// construction, so every tolerance below is unaffected.
const bool kForceThreads = [] {
  setenv("DOT_NUM_THREADS", "4", /*overwrite=*/0);
  return true;
}();

// Scoped fp32 override for tests whose tolerances assume the fp32 kernels
// even when the suite runs under DOT_GEMM_PRECISION=int8.
struct Fp32Pin {
  gemm::Precision prev = gemm::SetPrecision(gemm::Precision::kFp32);
  ~Fp32Pin() { gemm::SetPrecision(prev); }
};

struct GemmCase {
  int64_t m, k, n;
};

class GemmProperty : public ::testing::TestWithParam<GemmCase> {
 protected:
  static std::vector<float> RandomVec(size_t n, uint64_t seed) {
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto& x : v) x = static_cast<float>(rng.Uniform(-1, 1));
    return v;
  }

  static std::vector<float> NaiveGemm(const std::vector<float>& a,
                                      const std::vector<float>& b, int64_t m,
                                      int64_t k, int64_t n) {
    std::vector<float> c(static_cast<size_t>(m * n), 0.0f);
    for (int64_t i = 0; i < m; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        double acc = 0;
        for (int64_t kk = 0; kk < k; ++kk) {
          acc += static_cast<double>(a[static_cast<size_t>(i * k + kk)]) *
                 static_cast<double>(b[static_cast<size_t>(kk * n + j)]);
        }
        c[static_cast<size_t>(i * n + j)] = static_cast<float>(acc);
      }
    }
    return c;
  }
};

TEST_P(GemmProperty, MatchesNaiveReference) {
  auto [m, k, n] = GetParam();
  auto a = RandomVec(static_cast<size_t>(m * k), 1);
  auto b = RandomVec(static_cast<size_t>(k * n), 2);
  std::vector<float> c(static_cast<size_t>(m * n));
  internal::Gemm(a.data(), b.data(), c.data(), m, k, n, false);
  auto want = NaiveGemm(a, b, m, k, n);
  for (size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], want[i], 1e-3);
}

TEST_P(GemmProperty, AccumulateAddsOntoExisting) {
  auto [m, k, n] = GetParam();
  auto a = RandomVec(static_cast<size_t>(m * k), 3);
  auto b = RandomVec(static_cast<size_t>(k * n), 4);
  std::vector<float> c(static_cast<size_t>(m * n), 2.0f);
  internal::Gemm(a.data(), b.data(), c.data(), m, k, n, /*accumulate=*/true);
  auto want = NaiveGemm(a, b, m, k, n);
  for (size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], want[i] + 2.0f, 1e-3);
}

TEST_P(GemmProperty, TransposedAMatchesExplicitTranspose) {
  auto [m, k, n] = GetParam();
  // A stored [k, m]; GemmTA computes A^T * B.
  auto a_t = RandomVec(static_cast<size_t>(k * m), 5);
  auto b = RandomVec(static_cast<size_t>(k * n), 6);
  std::vector<float> c(static_cast<size_t>(m * n));
  internal::GemmTA(a_t.data(), b.data(), c.data(), m, k, n, false);
  // Build A = transpose(a_t) and compare with plain GEMM.
  std::vector<float> a(static_cast<size_t>(m * k));
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      a[static_cast<size_t>(i * k + kk)] = a_t[static_cast<size_t>(kk * m + i)];
    }
  }
  auto want = NaiveGemm(a, b, m, k, n);
  for (size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], want[i], 1e-3);
}

TEST_P(GemmProperty, TransposedBMatchesExplicitTranspose) {
  auto [m, k, n] = GetParam();
  auto a = RandomVec(static_cast<size_t>(m * k), 7);
  // B stored [n, k]; GemmTB computes A * B^T.
  auto b_t = RandomVec(static_cast<size_t>(n * k), 8);
  std::vector<float> c(static_cast<size_t>(m * n));
  internal::GemmTB(a.data(), b_t.data(), c.data(), m, k, n, false);
  std::vector<float> b(static_cast<size_t>(k * n));
  for (int64_t kk = 0; kk < k; ++kk) {
    for (int64_t j = 0; j < n; ++j) {
      b[static_cast<size_t>(kk * n + j)] = b_t[static_cast<size_t>(j * k + kk)];
    }
  }
  auto want = NaiveGemm(a, b, m, k, n);
  for (size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], want[i], 1e-3);
}

// The short-and-wide shapes (m < 64, n >= 2048) route through the
// column-parallel GEMM path used by batched conv2d.
INSTANTIATE_TEST_SUITE_P(Shapes, GemmProperty,
                         ::testing::Values(GemmCase{1, 1, 1}, GemmCase{3, 5, 2},
                                           GemmCase{16, 144, 32},
                                           GemmCase{64, 7, 65},
                                           GemmCase{5, 1, 9},
                                           GemmCase{4, 9, 2500},
                                           GemmCase{2, 33, 4096}));

struct ConvCase {
  int64_t n, c, oc, h, w, kernel, stride, pad;
  bool with_bias;
};

class ConvProperty : public ::testing::TestWithParam<ConvCase> {
 protected:
  static Tensor RandomTensor(std::vector<int64_t> shape, uint64_t seed) {
    Rng rng(seed);
    Tensor t = Tensor::Empty(std::move(shape));
    for (int64_t i = 0; i < t.numel(); ++i) {
      t.at(i) = static_cast<float>(rng.Uniform(-1, 1));
    }
    return t;
  }

  /// Direct convolution with double accumulation — no im2col, no GEMM, so
  /// a shared bug in the production lowering cannot hide here.
  static std::vector<float> NaiveConv(const Tensor& x, const Tensor& w,
                                      const Tensor& bias, const ConvCase& p,
                                      int64_t oh, int64_t ow) {
    std::vector<float> out(static_cast<size_t>(p.n * p.oc * oh * ow), 0.0f);
    for (int64_t n = 0; n < p.n; ++n) {
      for (int64_t o = 0; o < p.oc; ++o) {
        for (int64_t y = 0; y < oh; ++y) {
          for (int64_t xo = 0; xo < ow; ++xo) {
            double acc = p.with_bias ? bias.at(o) : 0.0;
            for (int64_t ci = 0; ci < p.c; ++ci) {
              for (int64_t ky = 0; ky < p.kernel; ++ky) {
                for (int64_t kx = 0; kx < p.kernel; ++kx) {
                  int64_t iy = y * p.stride + ky - p.pad;
                  int64_t ix = xo * p.stride + kx - p.pad;
                  if (iy < 0 || iy >= p.h || ix < 0 || ix >= p.w) continue;
                  acc += static_cast<double>(
                             x.at(((n * p.c + ci) * p.h + iy) * p.w + ix)) *
                         static_cast<double>(w.at(
                             ((o * p.c + ci) * p.kernel + ky) * p.kernel + kx));
                }
              }
            }
            out[static_cast<size_t>(((n * p.oc + o) * oh + y) * ow + xo)] =
                static_cast<float>(acc);
          }
        }
      }
    }
    return out;
  }
};

TEST_P(ConvProperty, MatchesNaiveDirectConvolution) {
  const ConvCase p = GetParam();
  Tensor x = RandomTensor({p.n, p.c, p.h, p.w}, 11);
  Tensor w = RandomTensor({p.oc, p.c, p.kernel, p.kernel}, 12);
  Tensor bias = p.with_bias ? RandomTensor({p.oc}, 13) : Tensor();
  // This checks the im2col *lowering* against direct convolution at fp32
  // tolerance; under DOT_GEMM_PRECISION=int8 the error is quantization-
  // scale, which the int8 differential wall bounds instead.
  Fp32Pin pin;
  NoGradGuard guard;
  Tensor y = Conv2d(x, w, bias, p.stride, p.pad);
  int64_t oh = (p.h + 2 * p.pad - p.kernel) / p.stride + 1;
  int64_t ow = (p.w + 2 * p.pad - p.kernel) / p.stride + 1;
  ASSERT_EQ(y.shape(), (std::vector<int64_t>{p.n, p.oc, oh, ow}));
  auto want = NaiveConv(x, w, bias, p, oh, ow);
  for (int64_t i = 0; i < y.numel(); ++i) {
    ASSERT_NEAR(y.at(i), want[static_cast<size_t>(i)], 1e-4)
        << "flat index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvProperty,
    ::testing::Values(ConvCase{1, 1, 1, 5, 5, 3, 1, 1, false},
                      ConvCase{3, 2, 4, 6, 6, 3, 1, 1, true},
                      ConvCase{1, 3, 2, 7, 7, 3, 2, 1, true},
                      ConvCase{3, 2, 3, 5, 8, 3, 2, 0, false},
                      ConvCase{2, 4, 3, 4, 4, 1, 1, 0, true},
                      ConvCase{1, 2, 2, 6, 5, 1, 2, 0, false},
                      ConvCase{2, 3, 2, 4, 4, 3, 1, 2, true},
                      ConvCase{3, 8, 8, 12, 12, 3, 1, 1, true}));

TEST(BroadcastShapeTest, Rules) {
  using internal::BroadcastShape;
  EXPECT_EQ(BroadcastShape({2, 3}, {2, 3}), (std::vector<int64_t>{2, 3}));
  EXPECT_EQ(BroadcastShape({2, 3}, {3}), (std::vector<int64_t>{2, 3}));
  EXPECT_EQ(BroadcastShape({2, 1}, {1, 4}), (std::vector<int64_t>{2, 4}));
  EXPECT_EQ(BroadcastShape({1}, {5, 5}), (std::vector<int64_t>{5, 5}));
  EXPECT_EQ(BroadcastShape({4, 1, 6}, {2, 6}), (std::vector<int64_t>{4, 2, 6}));
}

TEST(BatchMatMulVsLoop, Consistency) {
  Rng rng(9);
  Tensor a = Tensor::Randn({3, 4, 5}, &rng);
  Tensor b = Tensor::Randn({3, 5, 2}, &rng);
  NoGradGuard guard;
  Tensor c = BatchMatMul(a, b);
  for (int64_t i = 0; i < 3; ++i) {
    Tensor ai = Slice(a, 0, i, 1);
    Tensor bi = Slice(b, 0, i, 1);
    Tensor ci = MatMul(Reshape(ai, {4, 5}), Reshape(bi, {5, 2}));
    for (int64_t j = 0; j < 8; ++j) {
      EXPECT_NEAR(c.at(i * 8 + j), ci.at(j), 1e-4);
    }
  }
}

}  // namespace
}  // namespace dot
