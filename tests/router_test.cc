// Consistent-hash ring and router partition-key properties (DESIGN.md
// §5i). Pure-function tests — no model, no sockets: the ring's stability
// and balance guarantees are what make shard resizes cheap (only ~1/N of
// keys move) and per-shard caches effective (balanced load, all ToD
// buckets of one OD pair co-located). Dispatch behavior over live shards
// is covered by chaos_test.cc.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serve/router.h"

namespace dot {
namespace serve {
namespace {

/// Deterministic synthetic OD pairs spread over a city-sized box.
std::vector<OdtInput> SyntheticDemand(int n) {
  std::vector<OdtInput> out;
  out.reserve(n);
  uint64_t state = 12345;
  auto next = [&state]() {
    // splitmix64: cheap deterministic stream, independent of libc rand.
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  for (int i = 0; i < n; ++i) {
    OdtInput odt;
    odt.origin.lat = 30.0 + (next() % 20000) * 1e-5;     // ~22 km span
    odt.origin.lng = 104.0 + (next() % 20000) * 1e-5;
    odt.destination.lat = 30.0 + (next() % 20000) * 1e-5;
    odt.destination.lng = 104.0 + (next() % 20000) * 1e-5;
    odt.departure_time = static_cast<int64_t>(next() % 86400);
    out.push_back(odt);
  }
  return out;
}

TEST(OdKeyTest, DepartureTimeDoesNotChangeTheKey) {
  // Every time-of-day slot of one OD pair must land on the same shard, or
  // the neighbor-bucket ladder and LRU affinity fall apart.
  for (const OdtInput& odt : SyntheticDemand(100)) {
    uint64_t base = OdKey(odt);
    OdtInput shifted = odt;
    shifted.departure_time += 3600;
    EXPECT_EQ(OdKey(shifted), base);
    shifted.departure_time = 0;
    EXPECT_EQ(OdKey(shifted), base);
  }
}

TEST(OdKeyTest, DistinctPairsGetDistinctKeys) {
  std::vector<OdtInput> demand = SyntheticDemand(1000);
  std::map<uint64_t, int> seen;
  for (const OdtInput& odt : demand) ++seen[OdKey(odt)];
  // 64-bit keys over 1k random pairs: collisions mean a broken mix.
  EXPECT_EQ(seen.size(), demand.size());
}

TEST(OdKeyTest, SubQuantizationJitterSharesAKey) {
  // ~100 m quantization: GPS noise on the same physical OD pair must not
  // scatter it across shards.
  OdtInput odt;
  odt.origin = {104.06, 30.66};
  odt.destination = {104.10, 30.70};
  OdtInput jittered = odt;
  jittered.origin.lat += 2e-4;  // ~20 m, inside one quantization cell
  EXPECT_EQ(OdKey(odt), OdKey(jittered));
}

TEST(HashRingTest, LookupIsDeterministicAndCoversAllShards) {
  HashRing ring;
  for (int s = 0; s < 4; ++s) ring.AddShard(std::to_string(s));
  EXPECT_EQ(ring.num_shards(), 4u);
  std::map<std::string, int> hits;
  for (const OdtInput& odt : SyntheticDemand(1000)) {
    uint64_t key = OdKey(odt);
    const std::string& a = ring.ShardFor(key);
    EXPECT_EQ(ring.ShardFor(key), a);  // stable on repeat lookup
    ++hits[a];
  }
  EXPECT_EQ(hits.size(), 4u);  // every shard owns some keyspace
}

TEST(HashRingTest, BalanceWithinFifteenPercentAcrossShards) {
  HashRing ring;
  const int kShards = 4;
  for (int s = 0; s < kShards; ++s) ring.AddShard(std::to_string(s));
  std::vector<OdtInput> demand = SyntheticDemand(1000);
  std::map<std::string, int> hits;
  for (const OdtInput& odt : demand) ++hits[ring.ShardFor(OdKey(odt))];
  double expected = static_cast<double>(demand.size()) / kShards;
  for (const auto& [id, count] : hits) {
    EXPECT_NEAR(count, expected, 0.15 * expected)
        << "shard " << id << " owns " << count << " of " << demand.size();
  }
}

TEST(HashRingTest, AddingOneShardMovesAboutOneNthOfKeys) {
  HashRing ring;
  const int kShards = 4;
  for (int s = 0; s < kShards; ++s) ring.AddShard(std::to_string(s));
  std::vector<OdtInput> demand = SyntheticDemand(1000);
  std::vector<std::string> before;
  before.reserve(demand.size());
  for (const OdtInput& odt : demand) before.push_back(ring.ShardFor(OdKey(odt)));

  ring.AddShard("new");
  int moved = 0;
  for (size_t i = 0; i < demand.size(); ++i) {
    const std::string& now = ring.ShardFor(OdKey(demand[i]));
    if (now != before[i]) {
      // Keys only ever move TO the new shard; a key hopping between two
      // incumbent shards would invalidate both warm caches for nothing.
      EXPECT_EQ(now, "new");
      ++moved;
    }
  }
  // Ideal movement is 1/(N+1) = 20%; virtual nodes keep it close.
  double frac = static_cast<double>(moved) / demand.size();
  EXPECT_GT(frac, 0.10);
  EXPECT_LT(frac, 0.30);
}

TEST(HashRingTest, RemovingAShardOnlyReassignsItsOwnKeys) {
  HashRing ring;
  const int kShards = 5;
  for (int s = 0; s < kShards; ++s) ring.AddShard(std::to_string(s));
  std::vector<OdtInput> demand = SyntheticDemand(1000);
  std::vector<std::string> before;
  before.reserve(demand.size());
  for (const OdtInput& odt : demand) before.push_back(ring.ShardFor(OdKey(odt)));

  ring.RemoveShard("2");
  EXPECT_EQ(ring.num_shards(), 4u);
  int moved = 0;
  for (size_t i = 0; i < demand.size(); ++i) {
    const std::string& now = ring.ShardFor(OdKey(demand[i]));
    EXPECT_NE(now, "2");
    if (now != before[i]) {
      // Only the removed shard's keys are orphaned; everyone else's
      // assignment survives the resize.
      EXPECT_EQ(before[i], "2");
      ++moved;
    }
  }
  double frac = static_cast<double>(moved) / demand.size();
  EXPECT_GT(frac, 0.10);  // "2" owned ~1/5 of the keys
  EXPECT_LT(frac, 0.30);
}

TEST(HashRingTest, AddRemoveRoundTripRestoresTheOriginalAssignment) {
  HashRing ring;
  for (int s = 0; s < 3; ++s) ring.AddShard(std::to_string(s));
  std::vector<OdtInput> demand = SyntheticDemand(300);
  std::vector<std::string> before;
  for (const OdtInput& odt : demand) before.push_back(ring.ShardFor(OdKey(odt)));
  ring.AddShard("tmp");
  ring.RemoveShard("tmp");
  for (size_t i = 0; i < demand.size(); ++i) {
    EXPECT_EQ(ring.ShardFor(OdKey(demand[i])), before[i]);
  }
}

}  // namespace
}  // namespace serve
}  // namespace dot
