// Tests for trajectory dataset I/O (CSV import/export, binary cache).

#include "geo/io.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace dot {
namespace {

std::vector<Trajectory> SampleTrajectories() {
  std::vector<Trajectory> ts(2);
  ts[0].points = {{{104.01, 30.62}, 1000},
                  {{104.02, 30.63}, 1060},
                  {{104.03, 30.64}, 1125}};
  ts[1].points = {{{126.51, 45.71}, 2000}, {{126.52, 45.72}, 2090}};
  return ts;
}

TEST(IoTest, CsvRoundTrip) {
  std::string path = ::testing::TempDir() + "/traj.csv";
  auto original = SampleTrajectories();
  ASSERT_TRUE(SaveTrajectoriesCsv(path, original).ok());
  auto loaded = LoadTrajectoriesCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  for (size_t t = 0; t < 2; ++t) {
    ASSERT_EQ((*loaded)[t].points.size(), original[t].points.size());
    for (size_t i = 0; i < original[t].points.size(); ++i) {
      EXPECT_NEAR((*loaded)[t].points[i].gps.lng, original[t].points[i].gps.lng,
                  1e-6);
      EXPECT_NEAR((*loaded)[t].points[i].gps.lat, original[t].points[i].gps.lat,
                  1e-6);
      EXPECT_EQ((*loaded)[t].points[i].time, original[t].points[i].time);
    }
  }
  std::remove(path.c_str());
}

TEST(IoTest, CsvSkipsCommentsAndHeader) {
  std::string path = ::testing::TempDir() + "/traj2.csv";
  {
    std::ofstream f(path);
    f << "# exported from somewhere\n";
    f << "trip_id,lng,lat,unix_time\n";
    f << "a,104.0,30.6,100\n";
    f << "a,104.1,30.7,160\n";
    f << "b,126.5,45.7,500\n";
  }
  auto loaded = LoadTrajectoriesCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].points.size(), 2u);
  EXPECT_EQ((*loaded)[1].points.size(), 1u);
  std::remove(path.c_str());
}

TEST(IoTest, CsvSortsWithinTrip) {
  std::string path = ::testing::TempDir() + "/traj3.csv";
  {
    std::ofstream f(path);
    f << "x,104.0,30.6,300\n";
    f << "x,104.1,30.7,100\n";  // out of order
  }
  auto loaded = LoadTrajectoriesCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)[0].points[0].time, 100);
  EXPECT_EQ((*loaded)[0].points[1].time, 300);
  std::remove(path.c_str());
}

TEST(IoTest, CsvRejectsMalformedRows) {
  std::string path = ::testing::TempDir() + "/traj4.csv";
  {
    std::ofstream f(path);
    f << "a,104.0,30.6,100\n";
    f << "a,104.0\n";  // too few fields
  }
  auto loaded = LoadTrajectoriesCsv(path);
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(IoTest, CsvRejectsBadNumbers) {
  std::string path = ::testing::TempDir() + "/traj5.csv";
  {
    std::ofstream f(path);
    f << "a,104.0,30.6,100\n";
    f << "a,not_a_number,30.6,160\n";
  }
  EXPECT_FALSE(LoadTrajectoriesCsv(path).ok());
  std::remove(path.c_str());
}

TEST(IoTest, MissingFileIsIOError) {
  auto r = LoadTrajectoriesCsv("/nonexistent/path.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIOError());
}

TEST(IoTest, BinaryRoundTripExact) {
  std::string path = ::testing::TempDir() + "/traj.bin";
  auto original = SampleTrajectories();
  ASSERT_TRUE(SaveTrajectoriesBinary(path, original).ok());
  auto loaded = LoadTrajectoriesBinary(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  for (size_t t = 0; t < 2; ++t) {
    for (size_t i = 0; i < original[t].points.size(); ++i) {
      EXPECT_EQ((*loaded)[t].points[i].gps.lng, original[t].points[i].gps.lng);
      EXPECT_EQ((*loaded)[t].points[i].time, original[t].points[i].time);
    }
  }
  std::remove(path.c_str());
}

TEST(IoTest, BinaryRejectsWrongMagic) {
  std::string path = ::testing::TempDir() + "/notatraj.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f << "garbage";
  }
  EXPECT_FALSE(LoadTrajectoriesBinary(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dot
