// Edge-case tests across small utilities that the main suites do not cover:
// serializer failure paths, table internals, nn initialization statistics,
// and optimizer corner cases.

#include <gtest/gtest.h>

#include "tensor/nn.h"
#include "tensor/optim.h"
#include "util/serialize.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace dot {
namespace {

TEST(SerializeEdge, ReaderOnMissingFileNotOk) {
  BinaryReader r("/nonexistent/file.bin");
  EXPECT_FALSE(r.Ok());
}

TEST(SerializeEdge, WriterToBadPathNotOk) {
  BinaryWriter w("/nonexistent_dir/file.bin");
  EXPECT_FALSE(w.Ok());
}

TEST(SerializeEdge, TruncatedReadTurnsNotOk) {
  std::string path = ::testing::TempDir() + "/trunc.bin";
  {
    BinaryWriter w(path);
    w.WriteU64(7);
    ASSERT_TRUE(w.Close().ok());
  }
  BinaryReader r(path);
  EXPECT_EQ(r.ReadU64(), 7u);
  EXPECT_TRUE(r.Ok());
  r.ReadF32Vector();  // nothing left: must flip the stream state
  EXPECT_FALSE(r.Ok());
  std::remove(path.c_str());
}

TEST(TableEdge, RowsShorterThanHeaderArePadded) {
  Table t("pad");
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"only-one"});
  EXPECT_EQ(t.num_rows(), 1u);
  std::string s = t.ToString();
  EXPECT_NE(s.find("only-one"), std::string::npos);
}

TEST(TableEdge, EmptyTableRendersTitleOnly) {
  Table t("empty");
  std::string s = t.ToString();
  EXPECT_NE(s.find("empty"), std::string::npos);
}

TEST(NnInit, KaimingUniformBounds) {
  Rng rng(1);
  Tensor w = nn::KaimingUniform({64, 64}, 64, &rng);
  float bound = std::sqrt(3.0f / 64.0f);
  for (int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_LE(std::fabs(w.at(i)), bound + 1e-6f);
  }
  // Roughly centered.
  double mean = 0;
  for (int64_t i = 0; i < w.numel(); ++i) mean += w.at(i);
  EXPECT_NEAR(mean / static_cast<double>(w.numel()), 0.0, bound / 5);
}

TEST(NnModule, NamedParametersQualifyNestedNames) {
  Rng rng(2);
  nn::MultiheadAttention att(8, 2, &rng);
  bool found = false;
  for (auto& [name, p] : att.NamedParameters()) {
    (void)p;
    if (name == "wq.weight") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(OptimEdge, AdamSkipsParamsWithoutGrad) {
  Tensor a = Tensor::Full({2}, 1.0f).set_requires_grad(true);
  Tensor b = Tensor::Full({2}, 1.0f).set_requires_grad(true);
  optim::Adam opt({a, b}, 0.1f);
  // Only a gets a gradient.
  MseLoss(a, Tensor::Zeros({2})).Backward();
  opt.Step();
  EXPECT_NE(a.at(0), 1.0f);
  EXPECT_EQ(b.at(0), 1.0f);
}

TEST(OptimEdge, StepCountAdvances) {
  Tensor a = Tensor::Full({1}, 1.0f).set_requires_grad(true);
  optim::Adam opt({a});
  EXPECT_EQ(opt.step_count(), 0);
  MseLoss(a, Tensor::Zeros({1})).Backward();
  opt.Step();
  opt.Step();
  EXPECT_EQ(opt.step_count(), 2);
}

TEST(ThreadPoolEdge, GlobalPoolSingleton) {
  ThreadPool* a = ThreadPool::Global();
  ThreadPool* b = ThreadPool::Global();
  EXPECT_EQ(a, b);
  EXPECT_GE(a->num_threads(), 1);
}

TEST(ThreadPoolEdge, ZeroIterationsParallelForIsNoop) {
  ParallelFor(ThreadPool::Global(), 0,
              [](int64_t, int64_t) { FAIL() << "must not run"; });
}

TEST(RngEdge, ExponentialIsPositive) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_GT(rng.Exponential(2.0), 0.0);
}

}  // namespace
}  // namespace dot
