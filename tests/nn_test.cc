// Tests for nn modules: shapes, gradients, save/load, and optimizer behaviour.

#include "tensor/nn.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "gradcheck.h"
#include "tensor/ops.h"
#include "tensor/optim.h"

namespace dot {
namespace {

TEST(NnLinear, ShapeAndBias) {
  Rng rng(1);
  nn::Linear lin(4, 3, &rng);
  Tensor x = Tensor::Randn({5, 4}, &rng);
  Tensor y = lin.Forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{5, 3}));
}

TEST(NnLinear, HighRankInputKeepsLeadingDims) {
  Rng rng(2);
  nn::Linear lin(4, 6, &rng);
  Tensor x = Tensor::Randn({2, 3, 4}, &rng);
  Tensor y = lin.Forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 3, 6}));
}

TEST(NnLinear, GradFlowsToParameters) {
  Rng rng(3);
  nn::Linear lin(3, 2, &rng);
  Tensor x = Tensor::Randn({4, 3}, &rng);
  Tensor loss = Mean(Square(lin.Forward(x)));
  loss.Backward();
  for (auto& p : lin.Parameters()) {
    EXPECT_TRUE(p.has_grad());
    bool nonzero = false;
    for (float g : p.grad_vec()) nonzero = nonzero || g != 0.0f;
    EXPECT_TRUE(nonzero);
  }
}

TEST(NnConv, OutputShape) {
  Rng rng(4);
  nn::Conv2dLayer conv(3, 8, 3, 1, 1, &rng);
  Tensor x = Tensor::Randn({2, 3, 10, 10}, &rng);
  Tensor y = conv.Forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 8, 10, 10}));
}

TEST(NnEmbedding, LookupMatchesTableRows) {
  Rng rng(5);
  nn::Embedding emb(10, 4, &rng);
  Tensor y = emb.Forward({3, 3, 7});
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{3, 4}));
  for (int64_t i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(y.at(i), y.at(4 + i));
}

TEST(NnNorms, LayerNormAndGroupNormShapes) {
  Rng rng(6);
  nn::LayerNorm ln(8);
  Tensor x = Tensor::Randn({3, 8}, &rng);
  EXPECT_EQ(ln.Forward(x).shape(), x.shape());
  nn::GroupNorm gn(8, 4);
  Tensor img = Tensor::Randn({2, 8, 5, 5}, &rng);
  EXPECT_EQ(gn.Forward(img).shape(), img.shape());
}

TEST(NnAttention, ShapePreservedAndRowsMix) {
  Rng rng(7);
  nn::MultiheadAttention att(8, 2, &rng);
  Tensor x = Tensor::Randn({2, 5, 8}, &rng);
  Tensor y = att.Forward(x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2, 5, 8}));
}

TEST(NnAttention, GradientsReachAllProjections) {
  Rng rng(8);
  nn::MultiheadAttention att(4, 2, &rng);
  Tensor x = Tensor::Randn({1, 3, 4}, &rng);
  Mean(Square(att.Forward(x))).Backward();
  for (auto& [name, p] : att.NamedParameters()) {
    bool nonzero = false;
    if (p.has_grad()) {
      for (float g : p.grad_vec()) nonzero = nonzero || g != 0.0f;
    }
    EXPECT_TRUE(nonzero) << name;
  }
}

TEST(NnAttention, NumericalGradThroughAttention) {
  Rng rng(9);
  Tensor x = Tensor::Rand({1, 3, 4}, &rng, -0.5f, 0.5f);
  auto att = std::make_shared<nn::MultiheadAttention>(4, 2, &rng);
  dot::testing::ExpectGradientsMatch(
      {x},
      [att](const std::vector<Tensor>& in) {
        return Mean(Square(att->Forward(in[0])));
      },
      /*h=*/1e-2f, /*rtol=*/0.1f, /*atol=*/2e-3f);
}

TEST(NnGRU, StepChangesHiddenState) {
  Rng rng(10);
  nn::GRUCell gru(3, 5, &rng);
  Tensor x = Tensor::Randn({2, 3}, &rng);
  Tensor h = Tensor::Zeros({2, 5});
  Tensor h1 = gru.Forward(x, h);
  EXPECT_EQ(h1.shape(), (std::vector<int64_t>{2, 5}));
  bool changed = false;
  for (int64_t i = 0; i < h1.numel(); ++i) changed = changed || h1.at(i) != 0.0f;
  EXPECT_TRUE(changed);
}

TEST(NnGRU, HiddenStaysBounded) {
  Rng rng(11);
  nn::GRUCell gru(2, 4, &rng);
  Tensor h = Tensor::Zeros({1, 4});
  NoGradGuard guard;
  for (int step = 0; step < 50; ++step) {
    Tensor x = Tensor::Randn({1, 2}, &rng);
    h = gru.Forward(x, h);
  }
  for (int64_t i = 0; i < h.numel(); ++i) {
    EXPECT_LT(std::fabs(h.at(i)), 1.0f + 1e-5f);  // tanh-bounded
  }
}

TEST(NnFeedForward, Shape) {
  Rng rng(12);
  nn::FeedForward ffn(6, 24, &rng);
  Tensor x = Tensor::Randn({4, 6}, &rng);
  EXPECT_EQ(ffn.Forward(x).shape(), x.shape());
}

TEST(NnModule, ParameterCountsAreExact) {
  Rng rng(13);
  nn::Linear lin(4, 3, &rng);
  EXPECT_EQ(lin.NumParams(), 4 * 3 + 3);
  nn::Conv2dLayer conv(2, 5, 3, 1, 1, &rng);
  EXPECT_EQ(conv.NumParams(), 5 * 2 * 3 * 3 + 5);
  EXPECT_EQ(conv.SizeBytes(), conv.NumParams() * 4);
}

TEST(NnModule, SaveLoadRoundTrip) {
  Rng rng(14);
  nn::MultiheadAttention a(8, 2, &rng);
  nn::MultiheadAttention b(8, 2, &rng);
  std::string path = ::testing::TempDir() + "/att_ckpt.bin";
  ASSERT_TRUE(a.SaveFile(path).ok());
  ASSERT_TRUE(b.LoadFile(path).ok());
  Tensor x = Tensor::Randn({1, 4, 8}, &rng);
  NoGradGuard guard;
  Tensor ya = a.Forward(x);
  Tensor yb = b.Forward(x);
  for (int64_t i = 0; i < ya.numel(); ++i) EXPECT_FLOAT_EQ(ya.at(i), yb.at(i));
  std::remove(path.c_str());
}

TEST(NnModule, LoadRejectsWrongArchitecture) {
  Rng rng(15);
  nn::Linear a(4, 3, &rng);
  nn::Linear b(4, 5, &rng);
  std::string path = ::testing::TempDir() + "/lin_ckpt.bin";
  ASSERT_TRUE(a.SaveFile(path).ok());
  Status s = b.LoadFile(path);
  EXPECT_FALSE(s.ok());
  std::remove(path.c_str());
}

TEST(NnEncoding, SinusoidalBoundedAndDistinct) {
  Tensor pe = nn::SinusoidalEncoding(20, 16);
  EXPECT_EQ(pe.shape(), (std::vector<int64_t>{20, 16}));
  for (int64_t i = 0; i < pe.numel(); ++i) {
    EXPECT_LE(std::fabs(pe.at(i)), 1.0f + 1e-6f);
  }
  // Row 0 differs from row 7.
  bool distinct = false;
  for (int64_t i = 0; i < 16; ++i) {
    distinct = distinct || std::fabs(pe.at(i) - pe.at(7 * 16 + i)) > 1e-3f;
  }
  EXPECT_TRUE(distinct);
}

TEST(Optim, AdamMinimizesQuadratic) {
  Tensor x = Tensor::Full({3}, 5.0f).set_requires_grad(true);
  optim::Adam opt({x}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    opt.ZeroGrad();
    Tensor target = Tensor::FromVector({3}, {1, -2, 3});
    MseLoss(x, target).Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.at(0), 1.0f, 1e-2);
  EXPECT_NEAR(x.at(1), -2.0f, 1e-2);
  EXPECT_NEAR(x.at(2), 3.0f, 1e-2);
}

TEST(Optim, SgdMinimizesQuadratic) {
  Tensor x = Tensor::Full({2}, 4.0f).set_requires_grad(true);
  optim::SGD opt({x}, 0.2f, 0.5f);
  for (int i = 0; i < 200; ++i) {
    opt.ZeroGrad();
    Tensor target = Tensor::Zeros({2});
    MseLoss(x, target).Backward();
    opt.Step();
  }
  EXPECT_NEAR(x.at(0), 0.0f, 1e-3);
}

TEST(Optim, AdamTrainsSmallRegressorBelowInitialLoss) {
  // y = 2*x0 - x1 on random data; a 1-layer net should fit well.
  Rng rng(16);
  nn::Linear lin(2, 1, &rng);
  optim::Adam opt(lin.Parameters(), 0.05f);
  Tensor x = Tensor::Rand({64, 2}, &rng, -1, 1);
  std::vector<float> yv;
  for (int64_t i = 0; i < 64; ++i) yv.push_back(2 * x.at(2 * i) - x.at(2 * i + 1));
  Tensor y = Tensor::FromVector({64, 1}, yv);
  float first = 0, last = 0;
  for (int i = 0; i < 150; ++i) {
    opt.ZeroGrad();
    Tensor loss = MseLoss(lin.Forward(x), y);
    if (i == 0) first = loss.item();
    last = loss.item();
    loss.Backward();
    opt.Step();
  }
  EXPECT_LT(last, first * 0.01f);
  EXPECT_LT(last, 1e-3f);
}

}  // namespace
}  // namespace dot
