// DynamicBatcher policy tests under an injectable fake clock (manual_pump
// mode: no background thread, PumpOnce drives wave formation
// deterministically), plus the end-to-end bitwise-equivalence certificate:
// answers served through the batcher must equal direct QueryBatch calls on
// identical oracle state, so the front-end adds concurrency, not noise.

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/oracle_service.h"
#include "serve/batcher.h"

namespace dot {
namespace serve {
namespace {

/// Shared fake time source; tests advance it explicitly.
struct FakeClock {
  double ms = 0;
  std::function<double()> fn() {
    return [this] { return ms; };
  }
};

OdtInput MakeOdt(int i) {
  OdtInput odt;
  odt.origin = {104.0 + i * 1e-3, 30.6};
  odt.destination = {104.05, 30.65 + i * 1e-3};
  odt.departure_time = 1541060400 + i * 60;
  return odt;
}

/// Backend stub: answers minutes = 100 * index-in-wave + wave_number and
/// records every wave it saw.
struct StubBackend {
  std::vector<std::vector<OdtInput>> waves;
  std::vector<double> deadlines;  // QueryOptions.deadline_ms per wave
  Status fail_with;               // non-OK: every wave fails

  BatchBackend fn() {
    return [this](const std::vector<OdtInput>& odts,
                  const QueryOptions& opts) -> Result<std::vector<DotEstimate>> {
      waves.push_back(odts);
      deadlines.push_back(opts.deadline_ms);
      if (!fail_with.ok()) return fail_with;
      std::vector<DotEstimate> out(odts.size());
      for (size_t i = 0; i < odts.size(); ++i) {
        out[i].minutes = 100.0 * static_cast<double>(i) +
                         static_cast<double>(waves.size());
      }
      return out;
    };
  }
};

BatcherConfig ManualConfig(FakeClock* clock) {
  BatcherConfig config;
  config.max_batch = 4;
  config.max_wave_age_ms = 10.0;
  config.queue_capacity = 8;
  config.queue_budget_ms = 50.0;
  config.now_ms = clock->fn();
  config.manual_pump = true;
  return config;
}

TEST(BatcherPolicyTest, SizeTriggerFlushesFullWave) {
  FakeClock clock;
  StubBackend backend;
  DynamicBatcher batcher(backend.fn(), ManualConfig(&clock));
  std::vector<double> answers;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(batcher
                    .Submit(MakeOdt(i), 0,
                            [&](const Result<DotEstimate>& r) {
                              ASSERT_TRUE(r.ok());
                              answers.push_back(r->minutes);
                            })
                    .ok());
  }
  // No time has passed: the flush is purely the size trigger.
  EXPECT_EQ(batcher.PumpOnce(), 4);
  ASSERT_EQ(backend.waves.size(), 1u);
  EXPECT_EQ(backend.waves[0].size(), 4u);
  ASSERT_EQ(answers.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(answers[i], 100.0 * i + 1);  // FIFO order preserved
  }
  BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.size_flushes, 1);
  EXPECT_EQ(stats.age_flushes, 0);
  EXPECT_EQ(stats.submitted, 4);
  EXPECT_EQ(stats.completed, 4);
}

TEST(BatcherPolicyTest, AgeTriggerFlushesPartialWave) {
  FakeClock clock;
  StubBackend backend;
  DynamicBatcher batcher(backend.fn(), ManualConfig(&clock));
  int done = 0;
  ASSERT_TRUE(batcher
                  .Submit(MakeOdt(0), 0,
                          [&](const Result<DotEstimate>& r) {
                            EXPECT_TRUE(r.ok());
                            ++done;
                          })
                  .ok());
  EXPECT_EQ(batcher.PumpOnce(), 0);  // under max_batch, not old enough
  clock.ms += 9.99;
  EXPECT_EQ(batcher.PumpOnce(), 0);  // still one tick short of the age limit
  clock.ms += 0.02;
  EXPECT_EQ(batcher.PumpOnce(), 1);  // a lone query must not wait forever
  EXPECT_EQ(done, 1);
  BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.age_flushes, 1);
  EXPECT_EQ(stats.size_flushes, 0);
}

TEST(BatcherPolicyTest, EarliestDeadlinePropagatesToQueryOptions) {
  FakeClock clock;
  StubBackend backend;
  DynamicBatcher batcher(backend.fn(), ManualConfig(&clock));
  auto ignore = [](const Result<DotEstimate>&) {};
  // Deadlines 200ms, 80ms, none. 5ms passes in the queue. The wave budget
  // must be the most urgent member's *remaining* time: 80 - 5 = 75.
  ASSERT_TRUE(batcher.Submit(MakeOdt(0), 200.0, ignore).ok());
  ASSERT_TRUE(batcher.Submit(MakeOdt(1), 80.0, ignore).ok());
  ASSERT_TRUE(batcher.Submit(MakeOdt(2), 0.0, ignore).ok());
  clock.ms += 5.0;
  EXPECT_EQ(batcher.PumpOnce(/*force=*/true), 3);
  ASSERT_EQ(backend.deadlines.size(), 1u);
  EXPECT_DOUBLE_EQ(backend.deadlines[0], 75.0);
}

TEST(BatcherPolicyTest, NoDeadlinesMeansUnboundedWave) {
  FakeClock clock;
  StubBackend backend;
  DynamicBatcher batcher(backend.fn(), ManualConfig(&clock));
  auto ignore = [](const Result<DotEstimate>&) {};
  ASSERT_TRUE(batcher.Submit(MakeOdt(0), 0.0, ignore).ok());
  ASSERT_TRUE(batcher.Submit(MakeOdt(1), 0.0, ignore).ok());
  EXPECT_EQ(batcher.PumpOnce(/*force=*/true), 2);
  ASSERT_EQ(backend.deadlines.size(), 1u);
  EXPECT_DOUBLE_EQ(backend.deadlines[0], 0.0);  // 0 = no deadline
}

TEST(BatcherPolicyTest, ExpiredDeadlineClampsToTinyPositiveBudget) {
  FakeClock clock;
  StubBackend backend;
  DynamicBatcher batcher(backend.fn(), ManualConfig(&clock));
  auto ignore = [](const Result<DotEstimate>&) {};
  ASSERT_TRUE(batcher.Submit(MakeOdt(0), 3.0, ignore).ok());
  clock.ms += 20.0;  // waited far past its deadline
  EXPECT_EQ(batcher.PumpOnce(), 1);
  ASSERT_EQ(backend.deadlines.size(), 1u);
  // Must stay a *deadline* (positive) — 0 would disable the ladder.
  EXPECT_GT(backend.deadlines[0], 0.0);
  EXPECT_LE(backend.deadlines[0], 1.0);
}

TEST(BatcherPolicyTest, QueueFullRejectsTyped) {
  FakeClock clock;
  StubBackend backend;
  BatcherConfig config = ManualConfig(&clock);
  config.queue_capacity = 2;
  DynamicBatcher batcher(backend.fn(), config);
  auto ignore = [](const Result<DotEstimate>&) {};
  ASSERT_TRUE(batcher.Submit(MakeOdt(0), 0, ignore).ok());
  ASSERT_TRUE(batcher.Submit(MakeOdt(1), 0, ignore).ok());
  Status rejected = batcher.Submit(MakeOdt(2), 0, ignore);
  EXPECT_TRUE(rejected.IsResourceExhausted()) << rejected;
  EXPECT_EQ(batcher.stats().rejected_full, 1);
  EXPECT_EQ(batcher.queue_depth(), 2);
  // Draining the queue reopens admission.
  EXPECT_EQ(batcher.PumpOnce(/*force=*/true), 2);
  EXPECT_TRUE(batcher.Submit(MakeOdt(2), 0, ignore).ok());
}

TEST(BatcherPolicyTest, StaleQueueHeadRejectsNewArrivals) {
  FakeClock clock;
  StubBackend backend;
  DynamicBatcher batcher(backend.fn(), ManualConfig(&clock));
  auto ignore = [](const Result<DotEstimate>&) {};
  ASSERT_TRUE(batcher.Submit(MakeOdt(0), 0, ignore).ok());
  clock.ms += 51.0;  // past queue_budget_ms: the backend is clearly behind
  Status rejected = batcher.Submit(MakeOdt(1), 0, ignore);
  EXPECT_TRUE(rejected.IsResourceExhausted()) << rejected;
  EXPECT_EQ(batcher.stats().rejected_stale, 1);
  // The queued request itself is still answered.
  EXPECT_EQ(batcher.PumpOnce(), 1);
  EXPECT_EQ(batcher.stats().completed, 1);
}

TEST(BatcherPolicyTest, ShutdownDrainsEverythingThenRefuses) {
  FakeClock clock;
  StubBackend backend;
  DynamicBatcher batcher(backend.fn(), ManualConfig(&clock));
  int done = 0;
  for (int i = 0; i < 6; ++i) {  // 1.5 waves worth
    ASSERT_TRUE(batcher
                    .Submit(MakeOdt(i), 0,
                            [&](const Result<DotEstimate>& r) {
                              EXPECT_TRUE(r.ok());
                              ++done;
                            })
                    .ok());
  }
  batcher.Shutdown();
  EXPECT_EQ(done, 6);  // every admitted request answered before return
  EXPECT_EQ(batcher.queue_depth(), 0);
  BatcherStats stats = batcher.stats();
  EXPECT_EQ(stats.completed, 6);
  EXPECT_GE(stats.drain_flushes, 1);
  Status after = batcher.Submit(MakeOdt(9), 0, [](const Result<DotEstimate>&) {});
  EXPECT_TRUE(after.IsFailedPrecondition()) << after;
}

TEST(BatcherPolicyTest, BackendErrorReachesEveryCallback) {
  FakeClock clock;
  StubBackend backend;
  backend.fail_with = Status::Internal("wave exploded");
  DynamicBatcher batcher(backend.fn(), ManualConfig(&clock));
  int errors = 0;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(batcher
                    .Submit(MakeOdt(i), 0,
                            [&](const Result<DotEstimate>& r) {
                              EXPECT_TRUE(r.status().IsInternal());
                              ++errors;
                            })
                    .ok());
  }
  EXPECT_EQ(batcher.PumpOnce(/*force=*/true), 3);
  EXPECT_EQ(errors, 3);
}

TEST(BatcherPolicyTest, RealThreadFlushesOnAgeWithoutPumping) {
  // Sanity-check the background thread variant end to end: the wall-clock
  // age trigger must flush a lone request without any explicit pump.
  StubBackend backend;
  BatcherConfig config;
  config.max_batch = 64;        // size trigger unreachable
  config.max_wave_age_ms = 2.0;
  DynamicBatcher batcher(backend.fn(), config);
  std::mutex mu;
  std::condition_variable cv;
  bool answered = false;
  ASSERT_TRUE(batcher
                  .Submit(MakeOdt(0), 0,
                          [&](const Result<DotEstimate>& r) {
                            EXPECT_TRUE(r.ok());
                            std::lock_guard<std::mutex> lock(mu);
                            answered = true;
                            cv.notify_all();
                          })
                  .ok());
  std::unique_lock<std::mutex> lock(mu);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(10),
                          [&] { return answered; }));
  EXPECT_GE(batcher.stats().age_flushes, 1);
}

// --- End-to-end equivalence against a real trained oracle ----------------

class BatcherOracleFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CityConfig cc = CityConfig::ChengduLike();
    cc.grid_nodes = 8;
    cc.spacing_meters = 1300;
    city_ = new City(cc, 4);
    TripConfig tc = TripConfig::ChengduLike();
    tc.num_trips = 200;
    dataset_ = new BenchmarkDataset(BuildDataset(*city_, tc, 17, "batcher"));
    grid_ = new Grid(dataset_->MakeGrid(8).ValueOrDie());
    config_ = new DotConfig();
    config_->grid_size = 8;
    config_->diffusion_steps = 20;
    config_->sample_steps = 4;
    config_->unet.base_channels = 8;
    config_->unet.levels = 2;
    config_->unet.cond_dim = 32;
    config_->estimator.embed_dim = 32;
    config_->estimator.layers = 1;
    config_->stage1_epochs = 1;
    config_->stage2_epochs = 1;
    config_->val_samples = 0;
    config_->stage2_inferred_fraction = 0.0;
    DotOracle trained(*config_, *grid_);
    ASSERT_TRUE(trained.TrainStage1(dataset_->split.train).ok());
    ASSERT_TRUE(
        trained.TrainStage2(dataset_->split.train, dataset_->split.val).ok());
    checkpoint_ = ::testing::TempDir() + "/serve_batching_oracle.bin";
    ASSERT_TRUE(trained.SaveFile(checkpoint_).ok());
  }
  static void TearDownTestSuite() {
    std::remove(checkpoint_.c_str());
    delete config_;
    delete grid_;
    delete dataset_;
    delete city_;
    config_ = nullptr;
    grid_ = nullptr;
    dataset_ = nullptr;
    city_ = nullptr;
  }

  /// Fresh oracle clone with seed-state sampling RNG (the precondition for
  /// bitwise comparisons across service instances).
  static std::unique_ptr<DotOracle> NewClone() {
    auto oracle = std::make_unique<DotOracle>(*config_, *grid_);
    EXPECT_TRUE(oracle->LoadFile(checkpoint_).ok());
    return oracle;
  }

  static const OdtInput& TestOdt(size_t i) {
    return dataset_->split.test[i].odt;
  }

  static City* city_;
  static BenchmarkDataset* dataset_;
  static Grid* grid_;
  static DotConfig* config_;
  static std::string checkpoint_;
};

City* BatcherOracleFixture::city_ = nullptr;
BenchmarkDataset* BatcherOracleFixture::dataset_ = nullptr;
Grid* BatcherOracleFixture::grid_ = nullptr;
DotConfig* BatcherOracleFixture::config_ = nullptr;
std::string BatcherOracleFixture::checkpoint_;

TEST_F(BatcherOracleFixture, BatchedAnswersAreBitwiseEqualToDirectQueryBatch) {
  auto batcher_oracle = NewClone();
  auto direct_oracle = NewClone();
  OracleService batcher_service(batcher_oracle.get());
  OracleService direct_service(direct_oracle.get());

  std::vector<OdtInput> wave = {TestOdt(0), TestOdt(1), TestOdt(2),
                                TestOdt(3)};

  FakeClock clock;
  BatcherConfig config = ManualConfig(&clock);
  config.max_batch = static_cast<int64_t>(wave.size());
  DynamicBatcher batcher(OracleBackend(&batcher_service), config);
  std::vector<double> batched(wave.size(), -1);
  for (size_t i = 0; i < wave.size(); ++i) {
    ASSERT_TRUE(batcher
                    .Submit(wave[i], 0,
                            [&batched, i](const Result<DotEstimate>& r) {
                              ASSERT_TRUE(r.ok()) << r.status();
                              batched[i] = r->minutes;
                            })
                    .ok());
  }
  EXPECT_EQ(batcher.PumpOnce(), static_cast<int64_t>(wave.size()));

  // The batcher preserved FIFO composition, so the direct QueryBatch on an
  // identical clone must produce bitwise-identical minutes.
  Result<std::vector<DotEstimate>> direct = direct_service.QueryBatch(wave);
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(direct->size(), wave.size());
  for (size_t i = 0; i < wave.size(); ++i) {
    EXPECT_EQ(batched[i], (*direct)[i].minutes) << "query " << i;
  }
  EXPECT_EQ(batcher_service.stats().queries, direct_service.stats().queries);
}

TEST_F(BatcherOracleFixture, TwoAgeFlushedWavesMatchTwoDirectBatches) {
  auto batcher_oracle = NewClone();
  auto direct_oracle = NewClone();
  OracleService batcher_service(batcher_oracle.get());
  OracleService direct_service(direct_oracle.get());

  FakeClock clock;
  DynamicBatcher batcher(OracleBackend(&batcher_service),
                         ManualConfig(&clock));
  std::vector<double> batched;
  auto record = [&batched](const Result<DotEstimate>& r) {
    ASSERT_TRUE(r.ok()) << r.status();
    batched.push_back(r->minutes);
  };
  // Two arrivals, age-flushed as one wave; then one more, flushed alone.
  ASSERT_TRUE(batcher.Submit(TestOdt(0), 0, record).ok());
  ASSERT_TRUE(batcher.Submit(TestOdt(1), 0, record).ok());
  clock.ms += 11.0;
  EXPECT_EQ(batcher.PumpOnce(), 2);
  ASSERT_TRUE(batcher.Submit(TestOdt(2), 0, record).ok());
  clock.ms += 11.0;
  EXPECT_EQ(batcher.PumpOnce(), 1);

  Result<std::vector<DotEstimate>> first =
      direct_service.QueryBatch({TestOdt(0), TestOdt(1)});
  Result<std::vector<DotEstimate>> second =
      direct_service.QueryBatch({TestOdt(2)});
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(batched.size(), 3u);
  EXPECT_EQ(batched[0], (*first)[0].minutes);
  EXPECT_EQ(batched[1], (*first)[1].minutes);
  EXPECT_EQ(batched[2], (*second)[0].minutes);
}

}  // namespace
}  // namespace serve
}  // namespace dot
