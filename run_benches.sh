#!/bin/bash
# Runs every bench binary in sequence, continuing on failure.
# Usage: ./run_benches.sh [output_file]
OUT=${1:-bench_output.txt}
: > "$OUT"
# bench_table5_efficiency dumps the single-vs-batched serving comparison here.
export DOT_BENCH_BATCHED_JSON=${DOT_BENCH_BATCHED_JSON:-BENCH_batched.json}
# ... and a metrics + op-profile snapshot of its serving section here.
export DOT_BENCH_SERVING_METRICS_JSON=${DOT_BENCH_SERVING_METRICS_JSON:-BENCH_serving_metrics.json}
# bench_gemm dumps the per-kernel GEMM throughput table (naive/blocked/simd).
export DOT_BENCH_GEMM_JSON=${DOT_BENCH_GEMM_JSON:-BENCH_gemm.json}
# bench_memory dumps storage-pool allocation counts + steady-state latency.
export DOT_BENCH_MEMORY_JSON=${DOT_BENCH_MEMORY_JSON:-BENCH_memory.json}
# bench_serving_load dumps the socket front-end throughput/latency sweep
# (closed loop + open-loop Poisson rates, wave sizes, degradation mix).
export DOT_BENCH_SERVING_LOAD_JSON=${DOT_BENCH_SERVING_LOAD_JSON:-BENCH_serving.json}
# bench_quant dumps the int8-vs-fp32 GEMM throughput table and the demo
# oracle MAE gate; the binary exits non-zero when a gate fails.
export DOT_BENCH_QUANT_JSON=${DOT_BENCH_QUANT_JSON:-BENCH_quant.json}
# bench_ablation_sampler dumps MAE/RMSE/latency per DDIM step count.
export DOT_BENCH_SAMPLER_JSON=${DOT_BENCH_SAMPLER_JSON:-BENCH_sampler.json}
# bench_adaptation dumps incident staleness curves before/after the
# continual fine-tune round plus the swap-under-load error counts; the
# binary exits non-zero when a recovery/zero-error/version gate fails.
export DOT_BENCH_ADAPTATION_JSON=${DOT_BENCH_ADAPTATION_JSON:-BENCH_adaptation.json}
for b in build/bench/bench_*; do
  echo "===== $b =====" | tee -a "$OUT"
  if [ "$(basename $b)" = "bench_micro_kernels" ]; then
    timeout 1200 "$b" --benchmark_min_time=0.2 >> "$OUT" 2>&1 || echo "FAILED: $b" | tee -a "$OUT"
  else
    timeout 3600 "$b" >> "$OUT" 2>&1 || echo "FAILED: $b" | tee -a "$OUT"
  fi
done
echo "ALL_BENCHES_DONE" | tee -a "$OUT"
