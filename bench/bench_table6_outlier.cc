// Reproduces Table 6: baselines retrained after removing outlier
// trajectories with the DeepTEA-like detector, on both datasets.
//
// Paper shape to check: most baselines improve slightly over Table 3 after
// outlier removal, but DOT (trained on the raw data) still wins — its
// diffusion stage suppresses outliers without an explicit detector.

#include "baselines/outlier.h"
#include "common.h"

using namespace dot;
using namespace dot::bench;

int main() {
  Scale scale = GetScale();
  Table table("Table 6: baselines + outlier removal, RMSE/MAE/MAPE (scale=" +
              scale.name + ")");
  table.SetHeader({"Method", "Chengdu", "Harbin"});

  std::vector<std::string> names;
  std::vector<std::vector<std::string>> cells;
  bool first = true;
  for (auto* make : {&MakeChengdu, &MakeHarbin}) {
    BenchDataset ds = (*make)(scale);
    DotConfig cfg = ScaledDotConfig(scale);
    Grid grid = ds.data.MakeGrid(cfg.grid_size).ValueOrDie();

    // Outlier removal on the training split only (as in Sec. 6.5.1).
    std::vector<TripSample> clean = RemoveOutliers(ds.data.split.train, grid);
    std::printf("%s: outlier filter kept %zu of %zu training trips\n",
                ds.name.c_str(), clean.size(), ds.data.split.train.size());

    auto baselines =
        TrainOdtBaselines(*ds.city, clean, ds.data.split.val, grid, scale);
    // The paper's Table 6 subset: routing, path-based and neural methods.
    std::vector<std::string> keep = {"Dijkstra", "DeepST", "WDDRA", "STDGCN",
                                     "RNE",      "ST-NN",  "MURAT", "DeepOD"};
    size_t row = 0;
    for (const auto& oracle : baselines) {
      bool selected = false;
      for (const auto& k : keep) selected = selected || oracle->name() == k;
      if (!selected) continue;
      RegressionMetrics m =
          EvalOracle(*oracle, ds.data.split.test, scale.test_queries);
      if (first) {
        names.push_back(oracle->name() + "+DeepTEA");
        cells.emplace_back();
      }
      cells[row++].push_back(MetricCell(m));
    }

    // DOT on the raw training set (same model as Table 3 — cached).
    auto dot_oracle = TrainDotCached(cfg, grid, ds.data.split, ds.name, scale);
    std::vector<double> preds =
        DotPredict(dot_oracle.get(), ds.data.split.test, scale.test_queries);
    RegressionMetrics m = EvalPredictions(preds, ds.data.split.test);
    if (first) {
      names.push_back("DOT (Ours)");
      cells.emplace_back();
    }
    cells[row].push_back(MetricCell(m));
    first = false;
  }

  for (size_t i = 0; i < names.size(); ++i) {
    std::vector<std::string> row{names[i]};
    row.insert(row.end(), cells[i].begin(), cells[i].end());
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
