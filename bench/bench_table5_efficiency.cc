// Reproduces Table 5: efficiency on Chengdu — model size, training time
// per epoch, and estimation speed (seconds per 1K queries).
//
// Paper shape to check: LR/GBM tiny and fast; TEMP needs no training but
// carries the whole history and queries slowly; DOT's training is the
// slowest (two stages) while its estimation speed is on par with the other
// neural methods.

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "baselines/deepod.h"
#include "baselines/embedding.h"
#include "baselines/path_tte.h"
#include "baselines/regression.h"
#include "common.h"
#include "core/oracle_service.h"
#include "obs/metrics.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

using namespace dot;
using namespace dot::bench;

namespace {

std::string Bytes(int64_t b) {
  if (b < 1024) return std::to_string(b) + "B";
  if (b < 1024 * 1024) return Table::Num(static_cast<double>(b) / 1024.0, 2) + "K";
  return Table::Num(static_cast<double>(b) / (1024.0 * 1024.0), 2) + "M";
}

}  // namespace

int main() {
  Scale scale = GetScale();
  Table table("Table 5: efficiency on Chengdu (scale=" + scale.name + ")");
  table.SetHeader({"Method", "Model size", "Train (min/epoch)",
                   "Estimate (s/K queries)"});

  BenchDataset ds = MakeChengdu(scale);
  DotConfig cfg = ScaledDotConfig(scale);
  Grid grid = ds.data.MakeGrid(cfg.grid_size).ValueOrDie();
  const auto& train = ds.data.split.train;
  const auto& val = ds.data.split.val;

  // Baselines: time one full Train() call and divide by its epoch count to
  // get minutes/epoch; time estimation over the test cap and scale to 1K.
  struct Timing {
    std::string name;
    int64_t size_bytes;
    double train_min_per_epoch;  // negative = no training
    double est_s_per_k;
  };
  std::vector<Timing> rows;

  auto time_estimation = [&](const OdtOracle& oracle) {
    int64_t n = std::min<int64_t>(scale.test_queries,
                                  static_cast<int64_t>(ds.data.split.test.size()));
    Stopwatch sw;
    for (int64_t i = 0; i < n; ++i) {
      oracle.EstimateMinutes(ds.data.split.test[static_cast<size_t>(i)].odt);
    }
    return sw.ElapsedSeconds() / static_cast<double>(n) * 1000.0;
  };

  auto baselines = TrainOdtBaselines(*ds.city, train, val, grid, scale);
  // Epoch counts per baseline (matching TrainOdtBaselines internals); zero
  // means the method has no iterative training.
  std::vector<int64_t> epochs = {0,
                                 0,
                                 scale.rnn_epochs,
                                 scale.rnn_epochs,
                                 0,
                                 1,
                                 1,
                                 scale.baseline_epochs,
                                 scale.baseline_epochs,
                                 scale.baseline_epochs,
                                 scale.rnn_epochs};
  for (size_t i = 0; i < baselines.size(); ++i) {
    // Re-time training on a fresh instance is costly; instead time Train of
    // the cheapest methods and report the per-epoch cost of neural ones
    // from a dedicated timing run below. Here: measure estimation speed.
    rows.push_back(Timing{baselines[i]->name(), baselines[i]->SizeBytes(), 0,
                          time_estimation(*baselines[i])});
    (void)epochs;
  }

  // Dedicated training-time runs (single timed Train with 1-epoch configs
  // where supported).
  {
    Stopwatch sw;
    LinearRegressionOracle lr(grid);
    DOT_CHECK(lr.Train(train, val).ok());
    rows[5].train_min_per_epoch = sw.ElapsedSeconds() / 60.0;
  }
  {
    Stopwatch sw;
    GbmOracle gbm(grid);
    DOT_CHECK(gbm.Train(train, val).ok());
    rows[6].train_min_per_epoch = sw.ElapsedSeconds() / 60.0;
  }
  {
    NeuralBaselineConfig one;
    one.epochs = 1;
    Stopwatch sw;
    RneOracle rne(grid, one);
    DOT_CHECK(rne.Train(train, val).ok());
    rows[7].train_min_per_epoch = sw.ElapsedSeconds() / 60.0;
    sw.Restart();
    StnnOracle stnn(grid, one);
    DOT_CHECK(stnn.Train(train, val).ok());
    rows[8].train_min_per_epoch = sw.ElapsedSeconds() / 60.0;
    sw.Restart();
    MuratOracle murat(grid, one);
    DOT_CHECK(murat.Train(train, val).ok());
    rows[9].train_min_per_epoch = sw.ElapsedSeconds() / 60.0;
  }
  {
    DeepOdConfig one;
    one.epochs = 1;
    Stopwatch sw;
    DeepOdOracle deepod(grid, one);
    DOT_CHECK(deepod.Train(train, val).ok());
    rows[10].train_min_per_epoch = sw.ElapsedSeconds() / 60.0;
  }
  {
    PathTteConfig one;
    one.epochs = 1;
    Stopwatch sw;
    RecurrentPathEstimator wddra(grid, false, one);
    DOT_CHECK(wddra.Train(train, val).ok());
    rows[2].train_min_per_epoch = sw.ElapsedSeconds() / 60.0;
    sw.Restart();
    RecurrentPathEstimator stdgcn(grid, true, one);
    DOT_CHECK(stdgcn.Train(train, val).ok());
    rows[3].train_min_per_epoch = sw.ElapsedSeconds() / 60.0;
  }

  // DOT: time one epoch of each stage on fresh models, then measure the
  // two-stage estimation speed with the cached full model.
  double dot_stage1_min, dot_stage2_min;
  {
    DotConfig one = cfg;
    one.stage1_epochs = 1;
    one.stage2_epochs = 1;
    one.val_samples = 0;
    one.stage2_inferred_fraction = 0.0;  // time the training loop itself
    DotOracle probe(one, grid);
    Stopwatch sw;
    DOT_CHECK(probe.TrainStage1(train).ok());
    dot_stage1_min = sw.ElapsedSeconds() / 60.0;
    sw.Restart();
    DOT_CHECK(probe.TrainStage2(train, val).ok());
    dot_stage2_min = sw.ElapsedSeconds() / 60.0;
  }
  auto dot_oracle = TrainDotCached(cfg, grid, ds.data.split, ds.name, scale);
  double dot_est_s_per_k;
  {
    int64_t n = std::min<int64_t>(
        std::max<int64_t>(20, scale.test_queries / 4),
        static_cast<int64_t>(ds.data.split.test.size()));
    Stopwatch sw;
    std::vector<double> preds = DotPredict(dot_oracle.get(), ds.data.split.test, n);
    dot_est_s_per_k = sw.ElapsedSeconds() / static_cast<double>(n) * 1000.0;
  }

  for (const auto& r : rows) {
    table.AddRow({r.name, Bytes(r.size_bytes),
                  r.train_min_per_epoch > 0 ? Table::Num(r.train_min_per_epoch, 3)
                                            : std::string("-"),
                  Table::Num(r.est_s_per_k, 2)});
  }
  table.AddRow({"DOT (Ours)",
                Bytes(dot_oracle->NumParams() * 4),
                Table::Num(dot_stage1_min, 3) + "/" + Table::Num(dot_stage2_min, 3),
                Table::Num(dot_est_s_per_k, 2)});
  table.Print();

  // Batched serving path: a cold-cache request wave answered one Query at a
  // time vs one QueryBatch call (single batched reverse-diffusion pass).
  // Both sides compute identical results (see batch_serving_test); the gap
  // is pure batching + thread-pool parallelism, so it scales with cores.
  {
    constexpr int64_t kBatch = 16;
    int64_t n = std::min<int64_t>(
        kBatch, static_cast<int64_t>(ds.data.split.test.size()));
    std::vector<OdtInput> wave;
    for (int64_t i = 0; i < n; ++i) {
      wave.push_back(ds.data.split.test[static_cast<size_t>(i)].odt);
    }
    OracleService seq_service(dot_oracle.get());
    Stopwatch sw;
    for (const auto& odt : wave) DOT_CHECK(seq_service.Query(odt).ok());
    double seq_s = sw.ElapsedSeconds();
    OracleService batch_service(dot_oracle.get());
    sw.Restart();
    DOT_CHECK(batch_service.QueryBatch(wave).ok());
    double batch_s = sw.ElapsedSeconds();
    double speedup = seq_s / batch_s;
    int threads = ThreadPool::Global()->num_threads();

    Table bt("Batched serving, cold cache (B=" + std::to_string(n) +
             ", pool threads=" + std::to_string(threads) + ")");
    bt.SetHeader({"Path", "Total (s)", "s/query", "Throughput (q/s)"});
    bt.AddRow({"Sequential Query", Table::Num(seq_s, 3),
               Table::Num(seq_s / static_cast<double>(n), 4),
               Table::Num(static_cast<double>(n) / seq_s, 2)});
    bt.AddRow({"QueryBatch", Table::Num(batch_s, 3),
               Table::Num(batch_s / static_cast<double>(n), 4),
               Table::Num(static_cast<double>(n) / batch_s, 2)});
    bt.AddRow({"Speedup", "", "", Table::Num(speedup, 2) + "x"});
    bt.Print();

    if (const char* path = std::getenv("DOT_BENCH_BATCHED_JSON")) {
      std::ofstream out(path);
      out << "{\n"
          << "  \"batch_size\": " << n << ",\n"
          << "  \"pool_threads\": " << threads << ",\n"
          << "  \"sequential_s_per_query\": "
          << seq_s / static_cast<double>(n) << ",\n"
          << "  \"batched_s_per_query\": "
          << batch_s / static_cast<double>(n) << ",\n"
          << "  \"sequential_qps\": " << static_cast<double>(n) / seq_s << ",\n"
          << "  \"batched_qps\": " << static_cast<double>(n) / batch_s << ",\n"
          << "  \"speedup\": " << speedup << "\n"
          << "}\n";
    }
    // Full metrics + op-profile snapshot of the serving section: latency
    // histograms, hit/miss/dedup counters, and (under DOT_OP_PROFILE=1)
    // per-op FLOPs.
    if (const char* path = std::getenv("DOT_BENCH_SERVING_METRICS_JSON")) {
      if (!obs::DumpMetrics(path)) {
        std::fprintf(stderr, "failed to write %s\n", path);
      }
    }
  }
  return 0;
}
