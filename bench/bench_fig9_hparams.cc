// Reproduces Figure 9: effect of the key hyper-parameters on estimation
// accuracy (MAE on the Chengdu-like test set):
//   (a) grid length L_G, (b) diffusion steps N, (c) UNet depth L_D,
//   (d) embedding dimension d_E, (e) number of MViT layers L_E.
//
// Paper shape to check: every parameter has an interior optimum; accuracy
// degrades when the model is too small (underfits) or too large (overfits /
// oversparse PiTs); more diffusion steps help with diminishing returns.

#include "common.h"

using namespace dot;
using namespace dot::bench;

namespace {

double DotMae(const DotConfig& cfg, const Grid& grid, const DatasetSplit& split,
              const std::string& tag, const Scale& scale) {
  auto oracle = TrainDotCached(cfg, grid, split, tag, scale);
  std::vector<double> preds =
      DotPredict(oracle.get(), split.test, scale.test_queries);
  return EvalPredictions(preds, split.test).mae;
}

}  // namespace

int main() {
  Scale scale = GetScale();
  BenchDataset ds = MakeChengdu(scale);
  const auto& split = ds.data.split;
  DotConfig base = ScaledDotConfig(scale);
  bool full = scale.name == "full";

  Table table("Figure 9: hyper-parameter study, MAE (minutes) on Chengdu "
              "(scale=" + scale.name + ")");
  table.SetHeader({"Parameter", "Value", "MAE"});

  // (a) Grid length L_G — retrains both stages per value.
  {
    std::vector<int64_t> values =
        full ? std::vector<int64_t>{10, 16, 20, 24} : std::vector<int64_t>{10, 16};
    for (int64_t v : values) {
      DotConfig cfg = base;
      cfg.grid_size = v;
      Grid grid = ds.data.MakeGrid(v).ValueOrDie();
      table.AddRow({"L_G", std::to_string(v),
                    Table::Num(DotMae(cfg, grid, split, ds.name, scale), 3)});
    }
  }

  Grid grid = ds.data.MakeGrid(base.grid_size).ValueOrDie();

  // (b) Diffusion steps N (evaluation keeps the same strided step budget).
  {
    std::vector<int64_t> values = full ? std::vector<int64_t>{50, 100, 200, 400}
                                       : std::vector<int64_t>{50, 200};
    for (int64_t v : values) {
      DotConfig cfg = base;
      cfg.diffusion_steps = v;
      table.AddRow({"N", std::to_string(v),
                    Table::Num(DotMae(cfg, grid, split, ds.name, scale), 3)});
    }
  }

  // (c) UNet depth L_D.
  {
    std::vector<int64_t> values =
        full ? std::vector<int64_t>{1, 2, 3} : std::vector<int64_t>{1, 2};
    for (int64_t v : values) {
      DotConfig cfg = base;
      cfg.unet.levels = v;
      table.AddRow({"L_D", std::to_string(v),
                    Table::Num(DotMae(cfg, grid, split, ds.name, scale), 3)});
    }
  }

  // (d)+(e) Stage-2 parameters: share the trained stage 1 of the base
  // config and retrain stage 2 only.
  {
    auto donor = TrainDotCached(base, grid, split, ds.name, scale);
    int64_t n =
        std::min<int64_t>(scale.test_queries, static_cast<int64_t>(split.test.size()));
    std::vector<OdtInput> odts;
    for (int64_t i = 0; i < n; ++i) odts.push_back(split.test[i].odt);
    std::vector<Pit> inferred = donor->InferPits(odts);

    auto stage2_mae = [&](DotConfig cfg) {
      DotOracle oracle(cfg, grid);
      DOT_CHECK(oracle.AdoptStage1(*donor).ok());
      DOT_CHECK(oracle.TrainStage2(split.train, split.val).ok());
      return EvalPredictions(oracle.EstimateFromPits(inferred, odts), split.test)
          .mae;
    };
    for (int64_t v : full ? std::vector<int64_t>{16, 32, 64, 128}
                          : std::vector<int64_t>{16, 64, 128}) {
      DotConfig cfg = base;
      cfg.estimator.embed_dim = v;
      table.AddRow({"d_E", std::to_string(v), Table::Num(stage2_mae(cfg), 3)});
    }
    for (int64_t v : full ? std::vector<int64_t>{1, 2, 3, 4}
                          : std::vector<int64_t>{1, 2, 4}) {
      DotConfig cfg = base;
      cfg.estimator.layers = v;
      table.AddRow({"L_E", std::to_string(v), Table::Num(stage2_mae(cfg), 3)});
    }
  }

  table.Print();
  return 0;
}
