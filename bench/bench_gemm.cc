// GEMM kernel-engine benchmark: single-thread throughput of every kernel
// (naive / blocked / simd) over the bench shape grid, with the simd-vs-naive
// speedup that the PR acceptance gate reads from the 256x256x256 row.
//
// Output: a GFLOP/s table per shape on stdout, and a JSON dump to
// DOT_BENCH_GEMM_JSON (default BENCH_gemm.json; run_benches.sh exports it).
// The process pins DOT_NUM_THREADS=1 before the pool exists so the numbers
// are pure microkernel throughput, not parallel speedup.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "tensor/gemm_kernel.h"
#include "util/rng.h"

namespace dot {
namespace {

struct Shape {
  int64_t m, k, n;
  const char* note;
};

const Shape kShapes[] = {
    {256, 256, 256, "acceptance gate (>=3x simd vs naive)"},
    {512, 512, 512, "square, L2-resident panels"},
    {16, 144, 4096, "im2col conv, short-and-wide"},
    {64, 576, 256, "im2col conv, mid"},
    {64, 64, 64, "attention-scale"},
    {1024, 64, 8, "tall-skinny FC"},
};

double TimeKernel(gemm::Kernel kernel, gemm::Layout layout, const Shape& s,
                  const std::vector<float>& a, const std::vector<float>& b,
                  std::vector<float>* c) {
  using Clock = std::chrono::steady_clock;
  const double flops = 2.0 * static_cast<double>(s.m) *
                       static_cast<double>(s.k) * static_cast<double>(s.n);
  // Warm up once, then take the best of enough repetitions to cover ~0.3 s.
  gemm::Run(kernel, layout, a.data(), b.data(), c->data(), s.m, s.k, s.n,
            false);
  double best_ns = 1e30;
  double spent_ns = 0;
  int reps = 0;
  while ((spent_ns < 3e8 || reps < 3) && reps < 2000) {
    auto t0 = Clock::now();
    gemm::Run(kernel, layout, a.data(), b.data(), c->data(), s.m, s.k, s.n,
              false);
    double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
            .count());
    best_ns = ns < best_ns ? ns : best_ns;
    spent_ns += ns;
    ++reps;
  }
  return flops / best_ns;  // GFLOP/s
}

}  // namespace
}  // namespace dot

int main() {
  using namespace dot;
  // Pin the pool to one worker before it is created: this bench measures the
  // microkernel, and the determinism contract makes the values identical at
  // any thread count anyway.
  setenv("DOT_NUM_THREADS", "1", /*overwrite=*/1);

  const bool simd = gemm::SimdAvailable();
  const gemm::Kernel kernels[] = {gemm::Kernel::kNaive, gemm::Kernel::kBlocked,
                                  gemm::Kernel::kSimd};
  std::printf("GEMM kernel engine, single thread (simd %s, default %s)\n",
              simd ? "available" : "UNAVAILABLE -> blocked",
              gemm::KernelName(gemm::ActiveKernel()));
  std::printf("%-18s %12s %12s %12s %10s  %s\n", "shape", "naive GF/s",
              "blocked GF/s", "simd GF/s", "speedup", "note");

  std::string json = "{\n  \"simd_available\": ";
  json += simd ? "true" : "false";
  json += ",\n  \"threads\": 1,\n  \"shapes\": [\n";
  bool first_row = true;

  for (const Shape& s : kShapes) {
    Rng rng(42);
    std::vector<float> a(static_cast<size_t>(s.m * s.k));
    std::vector<float> b(static_cast<size_t>(s.k * s.n));
    std::vector<float> c(static_cast<size_t>(s.m * s.n));
    for (auto& x : a) x = static_cast<float>(rng.Normal());
    for (auto& x : b) x = static_cast<float>(rng.Normal());

    double gf[3] = {0, 0, 0};
    for (int ki = 0; ki < 3; ++ki) {
      gf[ki] = TimeKernel(kernels[ki], gemm::Layout::kNN, s, a, b, &c);
    }
    // "simd" silently runs the blocked engine when unsupported; report the
    // dispatched result either way so the speedup column is what a user gets.
    double speedup = gf[0] > 0 ? gf[2] / gf[0] : 0;
    char shape_buf[32];
    std::snprintf(shape_buf, sizeof(shape_buf), "%ldx%ldx%ld",
                  static_cast<long>(s.m), static_cast<long>(s.k),
                  static_cast<long>(s.n));
    std::printf("%-18s %12.2f %12.2f %12.2f %9.2fx  %s\n", shape_buf, gf[0],
                gf[1], gf[2], speedup, s.note);

    char row[512];
    std::snprintf(row, sizeof(row),
                  "    {\"m\": %ld, \"k\": %ld, \"n\": %ld, "
                  "\"naive_gflops\": %.3f, \"blocked_gflops\": %.3f, "
                  "\"simd_gflops\": %.3f, \"speedup_simd_vs_naive\": %.3f}",
                  static_cast<long>(s.m), static_cast<long>(s.k),
                  static_cast<long>(s.n), gf[0], gf[1], gf[2], speedup);
    if (!first_row) json += ",\n";
    json += row;
    first_row = false;
  }
  json += "\n  ]\n}\n";

  const char* path = std::getenv("DOT_BENCH_GEMM_JSON");
  std::string out_path = (path && path[0]) ? path : "BENCH_gemm.json";
  std::ofstream out(out_path);
  out << json;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
