// Reproduces Figures 10 and 11 (case studies, rendered as ASCII):
//   Fig. 10 — for one OD pair and departure window, the ground-truth PiTs of
//     two historical trips (one containing an outlier detour) next to the
//     PiT inferred by DOT: the inferred route should match the common route
//     and drop the detour cells.
//   Fig. 11 — the same OD pair queried at different times of day can yield
//     different inferred routes.

#include "common.h"

using namespace dot;
using namespace dot::bench;

namespace {

/// Side-by-side ASCII rendering of mask channels.
void PrintSideBySide(const std::vector<std::pair<std::string, const Pit*>>& pits) {
  if (pits.empty()) return;
  int64_t l = pits[0].second->grid_size();
  for (const auto& [title, pit] : pits) {
    (void)pit;
    std::printf("%-*s ", static_cast<int>(l), title.substr(0, l).c_str());
  }
  std::printf("\n");
  for (int64_t row = l - 1; row >= 0; --row) {
    for (const auto& [title, pit] : pits) {
      (void)title;
      for (int64_t col = 0; col < l; ++col) {
        std::printf("%c", pit->Visited(row, col) ? '#' : '.');
      }
      std::printf(" ");
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  Scale scale = GetScale();
  BenchDataset ds = MakeChengdu(scale);
  DotConfig cfg = ScaledDotConfig(scale);
  Grid grid = ds.data.MakeGrid(cfg.grid_size).ValueOrDie();
  auto oracle = TrainDotCached(cfg, grid, ds.data.split, ds.name, scale);

  // ---- Figure 10: same OD, same departure window, outlier vs normal. ----
  // Find a normal/outlier test pair with nearby endpoints.
  const auto& test = ds.data.split.test;
  const TripSample* normal = nullptr;
  const TripSample* outlier = nullptr;
  for (const auto& a : test) {
    if (a.is_outlier) continue;
    for (const auto& b : test) {
      if (!b.is_outlier) continue;
      if (DistanceMeters(a.odt.origin, b.odt.origin) < 1500 &&
          DistanceMeters(a.odt.destination, b.odt.destination) < 1500) {
        normal = &a;
        outlier = &b;
        break;
      }
    }
    if (normal != nullptr && outlier != nullptr) break;
  }
  if (normal == nullptr || outlier == nullptr) {
    // Fall back to any two test trips.
    normal = &test[0];
    outlier = &test[1];
  }

  std::printf("== Figure 10: ground-truth PiTs vs inferred PiT ==\n");
  Pit truth_normal = oracle->GroundTruthPit(normal->trajectory);
  Pit truth_outlier = oracle->GroundTruthPit(outlier->trajectory);
  std::vector<Pit> inferred = oracle->InferPits({normal->odt});
  PrintSideBySide({{"normal", &truth_normal},
                   {"outlier", &truth_outlier},
                   {"inferred", &inferred[0]}});
  std::printf(
      "normal trip: %.1f min | outlier trip: %.1f min | DOT estimate: %.1f min\n",
      normal->travel_time_minutes, outlier->travel_time_minutes,
      oracle->EstimateFromPits({inferred[0]}, {normal->odt})[0]);

  // ---- Figure 11: same OD pair, different departure times. ----
  std::printf("\n== Figure 11: inferred PiTs at different departure times ==\n");
  OdtInput odt = normal->odt;
  // 3 AM (free flow) vs 6 PM (rush hour), same day.
  int64_t day_start = odt.departure_time - SecondsOfDay(odt.departure_time);
  OdtInput night = odt, rush = odt;
  night.departure_time = day_start + 3 * 3600;
  rush.departure_time = day_start + 18 * 3600;
  std::vector<Pit> by_time = oracle->InferPits({night, rush});
  PrintSideBySide({{"03:00", &by_time[0]}, {"18:00", &by_time[1]}});
  std::vector<double> est = oracle->EstimateFromPits(by_time, {night, rush});
  std::printf("DOT estimate at 03:00: %.1f min | at 18:00: %.1f min\n", est[0],
              est[1]);
  return 0;
}
