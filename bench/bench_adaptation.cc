// Incident-storm adaptation bench (DESIGN.md §5k): measures how stale the
// clear-day demo model goes inside a disruption window, runs one continual
// fine-tune round through the serving AdaptationManager, and verifies the
// fleet hot-swaps onto the adapted model under live query load.
//
//   1. Train (and seal) the clear-day demo oracle.
//   2. Schedule an incident storm over the day after the training data and
//      simulate ground-truth trips from the disrupted city, bucketed by
//      hours-into-the-incident (the staleness axis).
//   3. Score the sealed model per bucket (the "before" curve), run an
//      adaptation round — fine-tune on fresh incident trajectories with a
//      clear-day replay mix, re-seal, publish via ShardRouter::SwapAll —
//      while a load thread hammers the router, then score the re-sealed
//      model per bucket (the "after" curve).
//
// Output: a table on stdout and a JSON dump to DOT_BENCH_ADAPTATION_JSON
// (default BENCH_adaptation.json; run_benches.sh exports it). Exits
// non-zero when a gate fails:
//   - the adapted model recovers >= 50% of the incident-induced MAE
//     degradation (vs the clear-day test MAE as the noise floor),
//   - zero routing errors while the swap runs under load,
//   - every shard's model version bumps mid-load.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/shard.h"
#include "eval/metrics.h"
#include "geo/trajectory.h"
#include "serve/adapt.h"
#include "serve/demo.h"
#include "serve/router.h"
#include "sim/incidents.h"
#include "util/logging.h"

namespace dot {
namespace {

constexpr double kRecoveryGate = 0.5;
constexpr int64_t kBucketHours = 3;

double HoldoutMae(DotOracle* oracle, const std::vector<TripSample>& samples) {
  std::vector<OdtInput> odts;
  for (const auto& s : samples) odts.push_back(s.odt);
  Result<std::vector<DotEstimate>> est = oracle->EstimateBatch(odts);
  DOT_CHECK(est.ok()) << est.status().ToString();
  MetricsAccumulator acc;
  for (size_t i = 0; i < samples.size(); ++i) {
    acc.Add((*est)[i].minutes, samples[i].travel_time_minutes);
  }
  return acc.Finalize().mae;
}

}  // namespace
}  // namespace dot

using namespace dot;

int main() {
  // 1) Clear-day world, sealed to the checkpoint the shard fleet and the
  // adaptation loop share.
  Result<serve::DemoWorld> world = serve::BuildDemoWorld("");
  DOT_CHECK(world.ok()) << world.status().ToString();
  std::string checkpoint =
      "/tmp/bench_adaptation_" + std::to_string(::getpid()) + ".ckpt";
  DOT_CHECK(world->oracle->SaveFile(checkpoint).ok());

  // 2) Incident storm over the day after the training data.
  TripConfig demo_trips = serve::DemoTripConfig();
  int64_t window_start =
      demo_trips.start_unix + demo_trips.num_days * 86400 + 7 * 3600;
  int64_t window_end = window_start + 12 * 3600;
  auto storm = std::make_shared<IncidentSchedule>(IncidentSchedule::Storm(
      *world->city, window_start, window_end, serve::kDemoCitySeed));

  serve::AdaptConfig adapt_config = serve::AdaptConfig::FromEnv();
  // The bench wants a decisive adaptation, not the server's cheap default:
  // more fresh trajectories and fine-tune epochs per round.
  adapt_config.fresh_trips = 320;
  adapt_config.holdout_trips = 64;
  adapt_config.finetune.stage1_epochs = 2;
  adapt_config.finetune.stage2_epochs = 6;
  adapt_config.finetune.max_samples = 1024;
  serve::AdaptationManager adapt(world->city.get(), world->grid.get(),
                                 world->dataset->split.train, checkpoint,
                                 adapt_config);
  adapt.SetIncidents(storm, window_start, window_end);

  // 3) Ground-truth incident trips, independent of the manager's fine-tune
  // pool, bucketed by hours into the window (the staleness axis).
  const int64_t num_buckets = (window_end - window_start) / (kBucketHours * 3600);
  std::vector<std::vector<TripSample>> buckets(
      static_cast<size_t>(num_buckets));
  {
    TripConfig tc = serve::DemoTripConfig();
    tc.start_unix = window_start - SecondsOfDay(window_start);
    tc.num_days = 1;
    tc.num_trips = 600;
    TrajectoryFilter filter;
    filter.max_duration_seconds = 120 * 60;
    TripGenerator gen(world->city.get(), 4242);
    for (auto& s : ToSamples(gen.Generate(tc), filter)) {
      int64_t offset = s.odt.departure_time - window_start;
      if (offset < 0 || s.odt.departure_time >= window_end) continue;
      buckets[static_cast<size_t>(offset / (kBucketHours * 3600))].push_back(
          std::move(s));
    }
  }

  // "Before" curve: the sealed clear-day model inside the incident.
  DotOracle stale(serve::DemoDotConfig(), *world->grid);
  DOT_CHECK(stale.LoadFile(checkpoint).ok());
  double clear_mae_stale = HoldoutMae(&stale, world->dataset->split.test);
  std::vector<double> mae_stale;
  std::vector<TripSample> all_incident;
  for (const auto& b : buckets) {
    mae_stale.push_back(b.empty() ? 0 : HoldoutMae(&stale, b));
    all_incident.insert(all_incident.end(), b.begin(), b.end());
  }
  double incident_mae_stale = HoldoutMae(&stale, all_incident);

  // 4) Shard fleet on the sealed checkpoint + live load during the round.
  ModelFactory factory = [&]() -> Result<std::unique_ptr<DotOracle>> {
    auto oracle =
        std::make_unique<DotOracle>(serve::DemoDotConfig(), *world->grid);
    DOT_RETURN_NOT_OK(oracle->LoadFile(checkpoint));
    return oracle;
  };
  std::vector<std::unique_ptr<OracleShard>> shards;
  for (int s = 0; s < 2; ++s) {
    ShardConfig sc;
    sc.shard_id = std::to_string(s);
    Result<std::unique_ptr<OracleShard>> shard =
        OracleShard::Create(factory, std::move(sc));
    DOT_CHECK(shard.ok()) << shard.status().ToString();
    shards.push_back(std::move(*shard));
  }
  serve::ShardRouter router(std::move(shards));
  int64_t version_before = 0;
  for (const auto& st : router.Statuses()) {
    version_before = std::max(version_before, st.model_version);
  }

  std::vector<OdtInput> load_odts;
  for (size_t i = 0; i < all_incident.size() && i < 64; ++i) {
    load_odts.push_back(all_incident[i].odt);
  }
  std::atomic<bool> stop_load{false};
  std::atomic<long long> load_queries{0};
  std::atomic<long long> load_errors{0};
  std::thread load_thread([&] {
    QueryOptions opts;
    size_t at = 0;
    while (!stop_load.load(std::memory_order_relaxed)) {
      std::vector<OdtInput> wave;
      for (int i = 0; i < 4; ++i) {
        wave.push_back(load_odts[at++ % load_odts.size()]);
      }
      Result<std::vector<DotEstimate>> got = router.Route(wave, opts);
      if (!got.ok()) {
        load_errors.fetch_add(1, std::memory_order_relaxed);
      } else {
        for (const auto& e : *got) {
          if (!std::isfinite(e.minutes)) {
            load_errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
      load_queries.fetch_add(static_cast<long long>(wave.size()),
                             std::memory_order_relaxed);
    }
  });

  // 5) The adaptation round publishes through the live fleet.
  Result<serve::AdaptRound> round =
      adapt.RunRound([&router] { return router.SwapAll(); });
  stop_load.store(true);
  load_thread.join();
  DOT_CHECK(round.ok()) << round.status().ToString();

  int64_t version_after = 0;
  for (const auto& st : router.Statuses()) {
    version_after = std::max(version_after, st.model_version);
  }

  // "After" curve: the re-sealed adapted model on the same buckets.
  DotOracle adapted(serve::DemoDotConfig(), *world->grid);
  DOT_CHECK(adapted.LoadFile(checkpoint).ok());
  double clear_mae_adapted = HoldoutMae(&adapted, world->dataset->split.test);
  std::vector<double> mae_adapted;
  for (const auto& b : buckets) {
    mae_adapted.push_back(b.empty() ? 0 : HoldoutMae(&adapted, b));
  }
  double incident_mae_adapted = HoldoutMae(&adapted, all_incident);

  double degradation = incident_mae_stale - clear_mae_stale;
  double recovered = incident_mae_stale - incident_mae_adapted;
  double recovered_fraction = degradation > 1e-9 ? recovered / degradation : 0;

  bool recovery_ok = recovered_fraction >= kRecoveryGate;
  bool zero_errors_ok = load_errors.load() == 0 && load_queries.load() > 0;
  bool version_ok = round->published && version_after > version_before;

  std::printf("Incident adaptation (window %lldh, %lld buckets)\n",
              static_cast<long long>((window_end - window_start) / 3600),
              static_cast<long long>(num_buckets));
  std::printf("  clear-day test MAE     %.3f -> %.3f min\n", clear_mae_stale,
              clear_mae_adapted);
  std::printf("  incident MAE           %.3f -> %.3f min (recovered %.0f%%)\n",
              incident_mae_stale, incident_mae_adapted,
              100 * recovered_fraction);
  for (size_t i = 0; i < buckets.size(); ++i) {
    std::printf("  staleness %2lldh-%2lldh (n=%3zu): %.3f -> %.3f min\n",
                static_cast<long long>(i * kBucketHours),
                static_cast<long long>((i + 1) * kBucketHours),
                buckets[i].size(), mae_stale[i], mae_adapted[i]);
  }
  std::printf("  swap under load: %lld queries, %lld errors, version %lld -> %lld\n",
              load_queries.load(), load_errors.load(),
              static_cast<long long>(version_before),
              static_cast<long long>(version_after));

  std::string json = "{\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"window_start\": %lld,\n  \"window_end\": %lld,\n"
                "  \"clear_mae_stale\": %.4f,\n  \"clear_mae_adapted\": %.4f,\n"
                "  \"incident_mae_stale\": %.4f,\n"
                "  \"incident_mae_adapted\": %.4f,\n"
                "  \"recovered_fraction\": %.4f,\n",
                static_cast<long long>(window_start),
                static_cast<long long>(window_end), clear_mae_stale,
                clear_mae_adapted, incident_mae_stale, incident_mae_adapted,
                recovered_fraction);
  json += buf;
  json += "  \"staleness_curve\": [\n";
  for (size_t i = 0; i < buckets.size(); ++i) {
    std::snprintf(buf, sizeof(buf),
                  "    {\"hours_into_incident\": %lld, \"bucket_hours\": %lld, "
                  "\"n\": %zu, \"mae_stale\": %.4f, \"mae_adapted\": %.4f}%s\n",
                  static_cast<long long>(i * kBucketHours),
                  static_cast<long long>(kBucketHours), buckets[i].size(),
                  mae_stale[i], mae_adapted[i],
                  i + 1 < buckets.size() ? "," : "");
    json += buf;
  }
  json += "  ],\n  \"round\": " + round->ToJson() + ",\n";
  std::snprintf(buf, sizeof(buf),
                "  \"swap_under_load\": {\"queries\": %lld, \"errors\": %lld, "
                "\"version_before\": %lld, \"version_after\": %lld},\n"
                "  \"gates\": {\"recovery_gate\": %.2f, \"recovery_ok\": %s, "
                "\"zero_errors_ok\": %s, \"version_bump_ok\": %s}\n}\n",
                load_queries.load(), load_errors.load(),
                static_cast<long long>(version_before),
                static_cast<long long>(version_after), kRecoveryGate,
                recovery_ok ? "true" : "false",
                zero_errors_ok ? "true" : "false",
                version_ok ? "true" : "false");
  json += buf;

  const char* path = std::getenv("DOT_BENCH_ADAPTATION_JSON");
  std::string out_path = (path && path[0]) ? path : "BENCH_adaptation.json";
  std::ofstream out(out_path);
  out << json;
  std::printf("wrote %s\n", out_path.c_str());
  ::unlink(checkpoint.c_str());

  if (!recovery_ok) {
    std::fprintf(stderr, "FAIL: recovered %.3f of incident degradation, gate %.2f\n",
                 recovered_fraction, kRecoveryGate);
    return 1;
  }
  if (!zero_errors_ok) {
    std::fprintf(stderr, "FAIL: %lld routing errors during swap under load\n",
                 load_errors.load());
    return 1;
  }
  if (!version_ok) {
    std::fprintf(stderr, "FAIL: model version did not bump (published=%d, %lld -> %lld)\n",
                 round->published ? 1 : 0,
                 static_cast<long long>(version_before),
                 static_cast<long long>(version_after));
    return 1;
  }
  return 0;
}
