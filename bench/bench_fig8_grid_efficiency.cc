// Reproduces Figure 8: efficiency impact of the grid length L_G —
// (a) model size, (b) stage-1 training time, (c) stage-2 training time for
// MViT vs vanilla ViT, (d) estimation speed for MViT vs ViT.
//
// Paper shape to check: size and stage-1 time grow with L_G; the MViT/ViT
// gap in both training and estimation widens as L_G grows (PiTs occupy a
// shrinking fraction of the grid); at the smallest L_G they are close.

#include "common.h"

#include "util/stopwatch.h"

using namespace dot;
using namespace dot::bench;

int main() {
  Scale scale = GetScale();
  std::vector<int64_t> grid_lengths =
      scale.name == "full" ? std::vector<int64_t>{10, 15, 20, 25, 30}
                           : std::vector<int64_t>{10, 16, 24};

  Table table("Figure 8: efficiency vs grid length L_G (scale=" + scale.name +
              ")");
  table.SetHeader({"L_G", "Model size (MB)", "Stage1 (s/epoch)",
                   "Stage2 MViT (s/epoch)", "Stage2 ViT (s/epoch)",
                   "Est MViT (s/K)", "Est ViT (s/K)"});

  BenchDataset ds = MakeChengdu(scale);
  const auto& split = ds.data.split;

  for (int64_t lg : grid_lengths) {
    DotConfig cfg = ScaledDotConfig(scale);
    cfg.grid_size = lg;
    cfg.stage1_epochs = 1;
    cfg.stage2_epochs = 1;
    cfg.val_samples = 0;
    // Isolate the MViT-vs-ViT training cost: no inferred-PiT generation
    // inside the timed stage-2 call.
    cfg.stage2_inferred_fraction = 0.0;
    Grid grid = ds.data.MakeGrid(lg).ValueOrDie();

    // Cap the timed subset so one row costs seconds, not minutes.
    DatasetSplit sub = split;
    size_t cap = std::min<size_t>(sub.train.size(),
                                  scale.name == "full" ? 512 : 256);
    sub.train.resize(cap);

    DotOracle mvit_oracle(cfg, grid);
    Stopwatch sw;
    DOT_CHECK(mvit_oracle.TrainStage1(sub.train).ok());
    double stage1_s = sw.ElapsedSeconds();

    sw.Restart();
    DOT_CHECK(mvit_oracle.TrainStage2(sub.train, {}).ok());
    double stage2_mvit_s = sw.ElapsedSeconds();

    DotConfig vit_cfg = cfg;
    vit_cfg.estimator_kind = EstimatorKind::kVit;
    DotOracle vit_oracle(vit_cfg, grid);
    DOT_CHECK(vit_oracle.AdoptStage1(mvit_oracle).ok());
    sw.Restart();
    DOT_CHECK(vit_oracle.TrainStage2(sub.train, {}).ok());
    double stage2_vit_s = sw.ElapsedSeconds();

    // Estimation speed: stage-2 only, on ground-truth PiTs of test trips
    // (isolates the MViT-vs-ViT cost as in Fig. 8(d)).
    int64_t n_eval = std::min<int64_t>(64, static_cast<int64_t>(split.test.size()));
    std::vector<Pit> pits;
    std::vector<OdtInput> odts;
    for (int64_t i = 0; i < n_eval; ++i) {
      pits.push_back(mvit_oracle.GroundTruthPit(split.test[i].trajectory));
      odts.push_back(split.test[i].odt);
    }
    sw.Restart();
    mvit_oracle.EstimateFromPits(pits, odts);
    double est_mvit = sw.ElapsedSeconds() / static_cast<double>(n_eval) * 1000;
    sw.Restart();
    vit_oracle.EstimateFromPits(pits, odts);
    double est_vit = sw.ElapsedSeconds() / static_cast<double>(n_eval) * 1000;

    table.AddRow({std::to_string(lg),
                  Table::Num(static_cast<double>(mvit_oracle.NumParams()) * 4 /
                                 (1024.0 * 1024.0), 2),
                  Table::Num(stage1_s, 2), Table::Num(stage2_mvit_s, 2),
                  Table::Num(stage2_vit_s, 2), Table::Num(est_mvit, 2),
                  Table::Num(est_vit, 2)});
  }
  table.Print();
  return 0;
}
