// Reproduces Table 7: ablation study on both datasets.
//
// Variants (Sec. 6.5.4):
//   Dijkstra+Est. / DeepST+Est. — routing methods feeding DOT's stage 2
//     (temporal channels filled from historical cell-transition times);
//   Infer.+WDDRA / Infer.+STDGCN — DOT's stage 1 feeding the path-based
//     estimators (inferred PiT -> cell sequence by Time-offset);
//   No-t / No-od / No-odt — conditioning ablations of the denoiser;
//   No-CE / No-ST — estimator input ablations;
//   Est-CNN / Est-ViT — estimator architecture swaps.
//
// Paper shape to check: No-odt worst (unconditional generation), No-od much
// worse than No-t; Est-ViT ~= DOT; Est-CNN clearly worse; routing+Est.
// behind full DOT; Infer.+path-based between baselines and DOT.

#include "baselines/cell_history.h"
#include "baselines/path_tte.h"
#include "baselines/routers.h"
#include "common.h"

using namespace dot;
using namespace dot::bench;

int main() {
  Scale scale = GetScale();
  Table table("Table 7: ablations, RMSE/MAE/MAPE (scale=" + scale.name + ")");
  table.SetHeader(scale.both_datasets
                      ? std::vector<std::string>{"Variant", "Chengdu", "Harbin"}
                      : std::vector<std::string>{"Variant", "Chengdu"});

  std::vector<std::string> names;
  std::vector<std::vector<std::string>> cells;
  auto emit = [&](bool first, size_t* row, const std::string& name,
                  const RegressionMetrics& m) {
    if (first) {
      names.push_back(name);
      cells.emplace_back();
    }
    cells[(*row)++].push_back(MetricCell(m));
  };

  bool first = true;
  std::vector<BenchDataset (*)(const Scale&)> makers = {&MakeChengdu};
  if (scale.both_datasets) makers.push_back(&MakeHarbin);
  for (auto* make : makers) {
    BenchDataset ds = (*make)(scale);
    DotConfig cfg = ScaledDotConfig(scale);
    Grid grid = ds.data.MakeGrid(cfg.grid_size).ValueOrDie();
    const auto& split = ds.data.split;
    int64_t cap = scale.test_queries;
    int64_t n = std::min<int64_t>(cap, static_cast<int64_t>(split.test.size()));
    size_t row = 0;

    // Full DOT (cached from Table 3) — also the stage-1/stage-2 donor.
    auto base = TrainDotCached(cfg, grid, split, ds.name, scale);
    std::vector<OdtInput> test_odts;
    for (int64_t i = 0; i < n; ++i) test_odts.push_back(split.test[i].odt);
    std::vector<Pit> inferred = base->InferPits(test_odts);

    // (1) Routing + Est.: routes -> PiTs with historical temporal channels,
    // estimated by the full model's stage 2.
    CellHistory history = CellHistory::Learn(split.train, grid);
    {
      DijkstraRouter dijkstra(&ds.city->network(), grid);
      DOT_CHECK(dijkstra.Train(split.train).ok());
      DeepStRouter deepst(grid);
      DOT_CHECK(deepst.Train(split.train).ok());
      for (auto* router : std::initializer_list<Router*>{&dijkstra, &deepst}) {
        std::vector<Pit> pits;
        for (int64_t i = 0; i < n; ++i) {
          const auto& s = split.test[i];
          pits.push_back(history.RouteToPit(router->Route(s.odt),
                                            s.odt.departure_time));
        }
        RegressionMetrics m =
            EvalPredictions(base->EstimateFromPits(pits, test_odts), split.test);
        emit(first, &row, router->name() + "+Est.", m);
      }
    }

    // (2) Infer. + path-based: inferred PiT -> ordered cell sequence ->
    // recurrent path estimators trained on ground-truth paths.
    {
      PathTteConfig ptc;
      ptc.epochs = scale.rnn_epochs;
      RecurrentPathEstimator wddra(grid, /*deep=*/false, ptc);
      DOT_CHECK(wddra.Train(split.train, split.val).ok());
      PathTteConfig stc = ptc;
      stc.epochs = std::max<int64_t>(2, scale.rnn_epochs / 2);
      auto stdgcn = SearchStdgcn(grid, split.train, split.val, stc);
      for (auto* est : std::initializer_list<PathEstimator*>{&wddra, stdgcn.get()}) {
        MetricsAccumulator acc;
        for (int64_t i = 0; i < n; ++i) {
          const auto& s = split.test[i];
          acc.Add(est->EstimateMinutes(PitToCellSequence(inferred[i]), s.odt),
                  s.travel_time_minutes);
        }
        emit(first, &row, "Infer.+" + est->name(), acc.Finalize());
      }
    }

    // (3) Conditioning ablations: retrain both stages with parts of the
    // ODT-Input removed.
    {
      struct CondVariant {
        const char* name;
        bool use_time, use_od;
      };
      for (CondVariant v : {CondVariant{"No-t", false, true},
                            CondVariant{"No-od", true, false},
                            CondVariant{"No-odt", false, false}}) {
        DotConfig vcfg = cfg;
        vcfg.use_time_condition = v.use_time;
        vcfg.use_od_condition = v.use_od;
        // Quick mode halves the ablated variants' stage-1 budget; the
        // expected direction (degradation) is unaffected.
        if (scale.name != "full") {
          vcfg.stage1_epochs = std::max<int64_t>(3, cfg.stage1_epochs / 2);
        }
        auto oracle = TrainDotCached(vcfg, grid, split, ds.name, scale);
        RegressionMetrics m = EvalPredictions(
            DotPredict(oracle.get(), split.test, cap), split.test);
        emit(first, &row, v.name, m);
      }
    }

    // (4)+(5) Estimator ablations: reuse the trained stage 1, retrain
    // stage 2 only.
    {
      struct EstVariant {
        const char* name;
        EstimatorKind kind;
        bool use_ce, use_st;
      };
      for (EstVariant v :
           {EstVariant{"No-CE", EstimatorKind::kMvit, false, true},
            EstVariant{"No-ST", EstimatorKind::kMvit, true, false},
            EstVariant{"Est-CNN", EstimatorKind::kCnn, true, true},
            EstVariant{"Est-ViT", EstimatorKind::kVit, true, true}}) {
        DotConfig vcfg = cfg;
        vcfg.estimator_kind = v.kind;
        vcfg.estimator.use_cell_embedding = v.use_ce;
        vcfg.estimator.use_latent_cast = v.use_st;
        DotOracle oracle(vcfg, grid);
        DOT_CHECK(oracle.AdoptStage1(*base).ok());
        DOT_CHECK(oracle.TrainStage2(split.train, split.val).ok());
        RegressionMetrics m = EvalPredictions(
            oracle.EstimateFromPits(inferred, test_odts), split.test);
        emit(first, &row, v.name, m);
      }
    }

    // Full DOT reference row.
    {
      RegressionMetrics m = EvalPredictions(
          base->EstimateFromPits(inferred, test_odts), split.test);
      emit(first, &row, "DOT", m);
    }
    first = false;
  }

  for (size_t i = 0; i < names.size(); ++i) {
    std::vector<std::string> row{names[i]};
    row.insert(row.end(), cells[i].begin(), cells[i].end());
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
