// Reproduces Table 8: PiT inference accuracy — RMSE/MAE between inferred
// and ground-truth PiTs on the test set, overall and per channel.
//
// Paper shape to check: small overall errors; the mask channel carries the
// largest error of the three, MAE well under the channel range.

#include "common.h"

using namespace dot;
using namespace dot::bench;

int main() {
  Scale scale = GetScale();
  Table table("Table 8: PiT inference accuracy, RMSE/MAE (scale=" + scale.name +
              ")");
  table.SetHeader({"Metric", "Chengdu", "Harbin"});

  std::vector<std::string> names = {"Overall", "Channel 1 (Mask)",
                                    "Channel 2 (ToD)", "Channel 3 (Offset)"};
  std::vector<std::vector<std::string>> cells(names.size());

  for (auto* make : {&MakeChengdu, &MakeHarbin}) {
    BenchDataset ds = (*make)(scale);
    DotConfig cfg = ScaledDotConfig(scale);
    Grid grid = ds.data.MakeGrid(cfg.grid_size).ValueOrDie();
    auto oracle = TrainDotCached(cfg, grid, ds.data.split, ds.name, scale);

    int64_t n = std::min<int64_t>(scale.test_queries,
                                  static_cast<int64_t>(ds.data.split.test.size()));
    std::vector<OdtInput> odts;
    for (int64_t i = 0; i < n; ++i) odts.push_back(ds.data.split.test[i].odt);
    std::vector<Pit> inferred = oracle->InferPits(odts);
    std::vector<PitError> errors;
    for (int64_t i = 0; i < n; ++i) {
      errors.push_back(ComparePits(
          inferred[static_cast<size_t>(i)],
          oracle->GroundTruthPit(ds.data.split.test[static_cast<size_t>(i)]
                                     .trajectory)));
    }
    PitError mean = MeanPitError(errors);
    cells[0].push_back(Table::Num(mean.overall_rmse, 3) + "/" +
                       Table::Num(mean.overall_mae, 3));
    for (int64_t c = 0; c < kPitChannels; ++c) {
      cells[static_cast<size_t>(c) + 1].push_back(
          Table::Num(mean.channel_rmse[c], 3) + "/" +
          Table::Num(mean.channel_mae[c], 3));
    }
  }

  for (size_t i = 0; i < names.size(); ++i) {
    std::vector<std::string> row{names[i]};
    row.insert(row.end(), cells[i].begin(), cells[i].end());
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
