// Serving load harness: drives the socket front-end with realistic OD/ToD
// traffic from the trip simulator and measures what the paper's "oracle for
// map-based services" framing actually demands of a server — throughput,
// tail latency, batch formation, and graceful degradation under overload.
//
// Default mode is self-contained: trains the demo oracle, seals it to a
// checkpoint, starts the sharded server in-process on a loopback port
// (DOT_SERVE_SHARDS worker shards, default 2), then runs
//   1. a closed-loop phase (N synchronous clients) to measure capacity,
//   2. an open-loop Poisson sweep at 0.5x / 1x / 2x the measured capacity
//      (open loop keeps sending at the target rate regardless of response
//      progress, so the 2x point genuinely overloads the queue and the
//      typed backpressure + degradation ladder must answer),
//   3. a `swap` phase: open loop at 0.5x capacity while every shard
//      hot-swaps its model mid-phase — the zero-downtime claim measured
//      (zero errors required; p99 should stay within 2x of steady state).
//
// Results (throughput, p50/p95/p99 latency, wave-size distribution,
// degradation mix, rejection counts) go to stdout and as JSON to
// $DOT_BENCH_SERVING_LOAD_JSON (default BENCH_serving.json; run_benches.sh
// exports it).
//
// `--client-smoke --port N [--queries K]` turns the binary into a tiny
// external client used by scripts/check.sh: it pings a *running* dot_server
// on that port, sends K demand queries, and exits nonzero unless every one
// is answered. No training happens in this mode.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <unistd.h>

#include "core/shard.h"
#include "serve/client.h"
#include "serve/demo.h"
#include "serve/router.h"
#include "serve/server.h"
#include "sim/trips.h"
#include "util/logging.h"

namespace dot {
namespace serve {
namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

constexpr double kDeadlineMs = 250.0;  // client budget per query

struct Percentiles {
  double mean = 0, p50 = 0, p95 = 0, p99 = 0;
};

Percentiles ComputePercentiles(std::vector<double> v) {
  Percentiles p;
  if (v.empty()) return p;
  std::sort(v.begin(), v.end());
  double sum = 0;
  for (double x : v) sum += x;
  p.mean = sum / static_cast<double>(v.size());
  auto at = [&](double q) {
    return v[static_cast<size_t>(q * static_cast<double>(v.size() - 1))];
  };
  p.p50 = at(0.50);
  p.p95 = at(0.95);
  p.p99 = at(0.99);
  return p;
}

/// Per-request server-side breakdown samples (V2 responses; every bench
/// query sets kQueryFlagWantBreakdown).
struct BreakdownVecs {
  std::vector<double> queue, batch_wait, stage1, stage2;
  void Append(const TimingBreakdown& b) {
    queue.push_back(b.queue_us);
    batch_wait.push_back(b.batch_wait_us);
    stage1.push_back(b.stage1_us);
    stage2.push_back(b.stage2_us);
  }
  void Merge(const BreakdownVecs& o) {
    queue.insert(queue.end(), o.queue.begin(), o.queue.end());
    batch_wait.insert(batch_wait.end(), o.batch_wait.begin(),
                      o.batch_wait.end());
    stage1.insert(stage1.end(), o.stage1.begin(), o.stage1.end());
    stage2.insert(stage2.end(), o.stage2.begin(), o.stage2.end());
  }
};

/// Per-phase outcome tally.
struct PhaseResult {
  std::string name;
  double target_qps = 0;       // 0 = closed loop
  double duration_s = 0;
  int64_t offered = 0;
  int64_t ok = 0;
  int64_t rejected = 0;        // typed ResourceExhausted answers
  int64_t errors = 0;          // any other non-OK response / transport error
  int64_t quality[4] = {0, 0, 0, 0};
  Percentiles latency_ms;
  // Server-side per-request segments (microseconds), from V2 responses.
  Percentiles bd_queue_us, bd_batch_wait_us, bd_stage1_us, bd_stage2_us;
  // Batcher deltas over the phase.
  int64_t waves = 0;
  int64_t size_flushes = 0, age_flushes = 0, drain_flushes = 0;
  int64_t completed = 0;

  double achieved_qps() const {
    return duration_s > 0 ? static_cast<double>(ok) / duration_s : 0;
  }
  double mean_wave() const {
    return waves > 0 ? static_cast<double>(completed) /
                           static_cast<double>(waves)
                     : 0;
  }
};

void TallyResponse(const QueryResponse& r, PhaseResult* out,
                   std::vector<double>* latencies, double latency_ms,
                   BreakdownVecs* bd) {
  if (r.code == 0) {
    ++out->ok;
    if (r.quality < 4) ++out->quality[r.quality];
    latencies->push_back(latency_ms);
    if (r.has_breakdown && bd != nullptr) bd->Append(r.breakdown);
  } else if (r.code == static_cast<uint8_t>(StatusCode::kResourceExhausted)) {
    ++out->rejected;
  } else {
    ++out->errors;
  }
}

void FillBreakdown(BreakdownVecs bd, PhaseResult* out) {
  out->bd_queue_us = ComputePercentiles(std::move(bd.queue));
  out->bd_batch_wait_us = ComputePercentiles(std::move(bd.batch_wait));
  out->bd_stage1_us = ComputePercentiles(std::move(bd.stage1));
  out->bd_stage2_us = ComputePercentiles(std::move(bd.stage2));
}

BatcherStats Delta(const BatcherStats& now, const BatcherStats& then) {
  BatcherStats d;
  d.waves = now.waves - then.waves;
  d.size_flushes = now.size_flushes - then.size_flushes;
  d.age_flushes = now.age_flushes - then.age_flushes;
  d.drain_flushes = now.drain_flushes - then.drain_flushes;
  d.completed = now.completed - then.completed;
  d.submitted = now.submitted - then.submitted;
  d.rejected_full = now.rejected_full - then.rejected_full;
  d.rejected_stale = now.rejected_stale - then.rejected_stale;
  return d;
}

void FillBatcherDelta(const BatcherStats& d, PhaseResult* out) {
  out->waves = d.waves;
  out->size_flushes = d.size_flushes;
  out->age_flushes = d.age_flushes;
  out->drain_flushes = d.drain_flushes;
  out->completed = d.completed;
}

/// Closed loop: `threads` synchronous clients, each Call()ing back to back
/// for `duration_s`. Measures sustainable capacity.
PhaseResult RunClosedLoop(int port, const std::vector<OdtInput>& demand,
                          int threads, double duration_s, Server* server) {
  PhaseResult result;
  result.name = "closed_loop";
  result.duration_s = duration_s;
  BatcherStats before = server->batcher_stats();
  std::mutex mu;
  std::vector<double> latencies;
  BreakdownVecs breakdown;
  std::atomic<int64_t> next_index{0};
  double end_ms = NowMs() + duration_s * 1e3;
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Client client;
      if (!client.Connect("127.0.0.1", port).ok()) return;
      PhaseResult local;
      std::vector<double> local_lat;
      BreakdownVecs local_bd;
      while (NowMs() < end_ms) {
        int64_t i = next_index.fetch_add(1);
        const OdtInput& odt = demand[static_cast<size_t>(i) % demand.size()];
        double t0 = NowMs();
        Result<QueryResponse> r =
            client.Call(static_cast<uint64_t>(i), odt, kDeadlineMs,
                        /*timeout_ms=*/10000, /*trace_id=*/0,
                        kQueryFlagWantBreakdown);
        ++local.offered;
        if (!r.ok()) {
          ++local.errors;
          continue;
        }
        TallyResponse(*r, &local, &local_lat, NowMs() - t0, &local_bd);
      }
      std::lock_guard<std::mutex> lock(mu);
      result.offered += local.offered;
      result.ok += local.ok;
      result.rejected += local.rejected;
      result.errors += local.errors;
      for (int q = 0; q < 4; ++q) result.quality[q] += local.quality[q];
      latencies.insert(latencies.end(), local_lat.begin(), local_lat.end());
      breakdown.Merge(local_bd);
    });
  }
  for (auto& w : workers) w.join();
  result.latency_ms = ComputePercentiles(std::move(latencies));
  FillBreakdown(std::move(breakdown), &result);
  FillBatcherDelta(Delta(server->batcher_stats(), before), &result);
  return result;
}

/// Open loop: Poisson arrivals at `target_qps`, dispatched round-robin over
/// `conns` pipelined connections. Arrivals never wait for responses, so an
/// over-capacity rate builds real queueing and forces the admission control
/// to answer.
PhaseResult RunOpenLoop(int port, const std::vector<OdtInput>& demand,
                        double target_qps, int conns, double duration_s,
                        Server* server, uint64_t seed) {
  PhaseResult result;
  result.name = "open_loop";
  result.target_qps = target_qps;
  result.duration_s = duration_s;
  BatcherStats before = server->batcher_stats();

  struct ConnState {
    Client client;
    std::mutex mu;
    std::unordered_map<uint64_t, double> sent_ms;  // id -> send time
    int64_t sent = 0;
    PhaseResult tally;
    std::vector<double> latencies;
    BreakdownVecs breakdown;
  };
  std::vector<std::unique_ptr<ConnState>> states;
  for (int c = 0; c < conns; ++c) {
    auto s = std::make_unique<ConnState>();
    if (!s->client.Connect("127.0.0.1", port).ok()) {
      result.errors = -1;
      return result;
    }
    states.push_back(std::move(s));
  }

  std::atomic<bool> dispatch_done{false};
  std::vector<std::thread> receivers;
  receivers.reserve(conns);
  for (int c = 0; c < conns; ++c) {
    receivers.emplace_back([&, c] {
      ConnState& s = *states[c];
      int64_t received = 0;
      int idle = 0;
      while (true) {
        {
          std::lock_guard<std::mutex> lock(s.mu);
          if (dispatch_done.load() && received >= s.sent) break;
        }
        Result<Message> msg = s.client.Receive(/*timeout_ms=*/250);
        if (!msg.ok()) {
          if (msg.status().IsDeadlineExceeded()) {
            // Stop waiting once the stream has clearly gone quiet after the
            // dispatch phase (lost responses would otherwise hang the bench).
            if (dispatch_done.load() && ++idle > 40) break;
            continue;
          }
          break;  // connection problem: give up on this conn
        }
        idle = 0;
        const auto* r = std::get_if<QueryResponse>(&*msg);
        if (r == nullptr) continue;
        double now = NowMs();
        double sent_at;
        {
          std::lock_guard<std::mutex> lock(s.mu);
          auto it = s.sent_ms.find(r->id);
          if (it == s.sent_ms.end()) continue;  // duplicate/unknown id
          sent_at = it->second;
          s.sent_ms.erase(it);
        }
        ++received;
        TallyResponse(*r, &s.tally, &s.latencies, now - sent_at,
                      &s.breakdown);
      }
    });
  }

  // Dispatcher: exponential inter-arrivals at the target rate.
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> gap_s(target_qps);
  double next_ms = NowMs();
  double end_ms = next_ms + duration_s * 1e3;
  uint64_t id = 1;
  size_t demand_i = 0;
  while (next_ms < end_ms) {
    double now = NowMs();
    if (now < next_ms) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(next_ms - now));
    }
    ConnState& s = *states[id % static_cast<uint64_t>(conns)];
    const OdtInput& odt = demand[demand_i++ % demand.size()];
    {
      std::lock_guard<std::mutex> lock(s.mu);
      s.sent_ms[id] = NowMs();
      ++s.sent;
    }
    if (!s.client
             .SendQuery(id, odt, kDeadlineMs, /*trace_id=*/0,
                        kQueryFlagWantBreakdown)
             .ok()) {
      std::lock_guard<std::mutex> lock(s.mu);
      s.sent_ms.erase(id);
      --s.sent;
      ++result.errors;
    } else {
      ++result.offered;
    }
    ++id;
    next_ms += gap_s(rng) * 1e3;
  }
  dispatch_done.store(true);
  for (auto& t : receivers) t.join();

  std::vector<double> latencies;
  BreakdownVecs breakdown;
  for (auto& s : states) {
    result.ok += s->tally.ok;
    result.rejected += s->tally.rejected;
    result.errors += s->tally.errors;
    for (int q = 0; q < 4; ++q) result.quality[q] += s->tally.quality[q];
    latencies.insert(latencies.end(), s->latencies.begin(),
                     s->latencies.end());
    breakdown.Merge(s->breakdown);
  }
  result.latency_ms = ComputePercentiles(std::move(latencies));
  FillBreakdown(std::move(breakdown), &result);
  FillBatcherDelta(Delta(server->batcher_stats(), before), &result);
  return result;
}

std::string QualityJson(const PhaseResult& r) {
  std::ostringstream os;
  os << "{";
  for (int q = 0; q < 4; ++q) {
    if (q) os << ", ";
    os << "\"" << ServedQualityName(static_cast<ServedQuality>(q))
       << "\": " << r.quality[q];
  }
  os << "}";
  return os.str();
}

std::string PercentilesJson(const Percentiles& p) {
  std::ostringstream os;
  os.precision(6);
  os << "{\"mean\": " << p.mean << ", \"p50\": " << p.p50
     << ", \"p95\": " << p.p95 << ", \"p99\": " << p.p99 << "}";
  return os.str();
}

std::string PhaseJson(const PhaseResult& r) {
  std::ostringstream os;
  os.precision(6);
  os << "    {\"name\": \"" << r.name << "\", \"target_qps\": " << r.target_qps
     << ", \"duration_s\": " << r.duration_s << ",\n"
     << "     \"offered\": " << r.offered << ", \"ok\": " << r.ok
     << ", \"rejected\": " << r.rejected << ", \"errors\": " << r.errors
     << ", \"achieved_qps\": " << r.achieved_qps() << ",\n"
     << "     \"latency_ms\": " << PercentilesJson(r.latency_ms) << ",\n"
     << "     \"breakdown_us\": {\"queue\": " << PercentilesJson(r.bd_queue_us)
     << ", \"batch_wait\": " << PercentilesJson(r.bd_batch_wait_us)
     << ", \"stage1\": " << PercentilesJson(r.bd_stage1_us)
     << ", \"stage2\": " << PercentilesJson(r.bd_stage2_us) << "},\n"
     << "     \"quality\": " << QualityJson(r) << ",\n"
     << "     \"waves\": " << r.waves
     << ", \"mean_wave_size\": " << r.mean_wave()
     << ", \"flush_triggers\": {\"size\": " << r.size_flushes
     << ", \"age\": " << r.age_flushes << ", \"drain\": " << r.drain_flushes
     << "}}";
  return os.str();
}

void PrintPhase(const PhaseResult& r) {
  std::printf(
      "%-12s target=%7.1f qps  ok=%6lld rej=%5lld err=%3lld  "
      "qps=%7.1f  p50=%6.1fms p95=%6.1fms p99=%6.1fms  waves=%5lld "
      "mean_wave=%.2f\n",
      r.name.c_str(), r.target_qps, static_cast<long long>(r.ok),
      static_cast<long long>(r.rejected), static_cast<long long>(r.errors),
      r.achieved_qps(), r.latency_ms.p50, r.latency_ms.p95, r.latency_ms.p99,
      static_cast<long long>(r.waves), r.mean_wave());
}

int RunClientSmoke(int port, int queries) {
  // Demand from the same demo city the dot_server answers for; the city is
  // cheap to build (no training, no routing).
  City city(DemoCityConfig(), kDemoCitySeed);
  TripGenerator gen(&city, 99);
  std::vector<OdtInput> demand =
      gen.GenerateDemand(queries, DemoTripConfig());
  Client client;
  Status connected = client.Connect("127.0.0.1", port);
  if (!connected.ok()) {
    std::fprintf(stderr, "smoke: %s\n", connected.ToString().c_str());
    return 1;
  }
  Status ping = client.PingServer(0, /*timeout_ms=*/10000);
  if (!ping.ok()) {
    std::fprintf(stderr, "smoke ping: %s\n", ping.ToString().c_str());
    return 1;
  }
  int64_t ok = 0;
  for (int i = 0; i < queries; ++i) {
    Result<QueryResponse> r =
        client.Call(static_cast<uint64_t>(i + 1), demand[i], kDeadlineMs,
                    /*timeout_ms=*/30000);
    if (!r.ok()) {
      std::fprintf(stderr, "smoke query %d: %s\n", i,
                   r.status().ToString().c_str());
      return 1;
    }
    if (r->code != 0) {
      std::fprintf(stderr, "smoke query %d: code=%d %s\n", i, r->code,
                   r->message.c_str());
      return 1;
    }
    if (!(r->minutes > 0) || !(r->minutes < 24 * 60)) {
      std::fprintf(stderr, "smoke query %d: implausible minutes=%f\n", i,
                   r->minutes);
      return 1;
    }
    ++ok;
  }
  std::printf("SMOKE_OK queries=%lld\n", static_cast<long long>(ok));
  return 0;
}

int RunLoadBench() {
  const char* scale_env = std::getenv("DOT_BENCH_SCALE");
  bool full = scale_env != nullptr && std::string(scale_env) == "full";
  double phase_s = full ? 5.0 : 2.0;
  int threads = full ? 8 : 4;

  DOT_LOG_INFO << "training demo oracle for the serving bench";
  Result<DemoWorld> world = BuildDemoWorld();
  if (!world.ok()) {
    std::fprintf(stderr, "demo world: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }

  // The bench serves through the production sharded wiring: the trained
  // demo oracle is sealed to a checkpoint and every shard loads its own
  // replica from it, exactly like dot_server. The swap phase re-runs the
  // same factory for the shadow models.
  std::string ckpt =
      "/tmp/dot_bench_serving_" + std::to_string(::getpid()) + ".ckpt";
  Status sealed = world->oracle->SaveFile(ckpt);
  if (!sealed.ok()) {
    std::fprintf(stderr, "seal checkpoint: %s\n", sealed.ToString().c_str());
    return 1;
  }
  ModelFactory factory = [&world,
                          ckpt]() -> Result<std::unique_ptr<DotOracle>> {
    auto oracle = std::make_unique<DotOracle>(DemoDotConfig(), *world->grid);
    Status loaded = oracle->LoadFile(ckpt);
    if (!loaded.ok()) return loaded;
    return oracle;
  };
  long num_shards = 2;
  if (const char* v = std::getenv("DOT_SERVE_SHARDS")) {
    char* end = nullptr;
    long parsed = std::strtol(v, &end, 10);
    if (end && *end == '\0' && parsed > 0) num_shards = parsed;
  }
  std::vector<std::unique_ptr<OracleShard>> shards;
  for (long s = 0; s < num_shards; ++s) {
    ShardConfig shard_config;
    shard_config.shard_id = std::to_string(s);
    // Large enough that the canary ring covers the swap phase's hot
    // working set, so the shadow models go live warm.
    shard_config.canary_capacity = 128;
    Result<std::unique_ptr<OracleShard>> shard =
        OracleShard::Create(factory, std::move(shard_config));
    if (!shard.ok()) {
      std::fprintf(stderr, "shard %ld: %s\n", s,
                   shard.status().ToString().c_str());
      ::unlink(ckpt.c_str());
      return 1;
    }
    shards.push_back(std::move(*shard));
  }
  ShardRouter router(std::move(shards));

  ServerConfig config = ServerConfig::FromEnv();
  // A deliberately small queue budget so the 2x-capacity point sheds load
  // instead of building a seconds-deep queue.
  config.batcher.queue_budget_ms = 2 * kDeadlineMs;
  config.batcher.queue_capacity = 512;
  Server server(RouterBackend(&router), config);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start: %s\n", started.ToString().c_str());
    ::unlink(ckpt.c_str());
    return 1;
  }

  // OD/ToD demand replayed from the simulator's demand model.
  TripGenerator gen(world->city.get(), 7);
  std::vector<OdtInput> demand = gen.GenerateDemand(4096, DemoTripConfig());

  // Warmup: populate the service cache the way any long-running server
  // would be warm, so the measured phases compare batching policies, not
  // first-touch compulsory misses.
  PhaseResult warmup = RunClosedLoop(server.port(), demand, threads,
                                     phase_s * 0.5, &server);
  std::printf("warmup: %lld queries\n", static_cast<long long>(warmup.ok));

  PhaseResult closed =
      RunClosedLoop(server.port(), demand, threads, phase_s, &server);
  PrintPhase(closed);
  double capacity = std::max(closed.achieved_qps(), 1.0);

  std::vector<PhaseResult> open;
  const double kRateFactors[] = {0.5, 1.0, 2.0};
  uint64_t seed = 1234;
  for (double factor : kRateFactors) {
    PhaseResult r = RunOpenLoop(server.port(), demand, factor * capacity,
                                /*conns=*/threads, phase_s, &server, seed++);
    r.name = "open_" + std::to_string(factor).substr(0, 3) + "x";
    PrintPhase(r);
    open.push_back(r);
  }

  // Swap phase: steady 0.5x open-loop load while every shard hot-swaps its
  // model a third of the way in. The zero-downtime claim, measured: the
  // phase must serve zero errors and its p99 should stay within 2x of the
  // equivalent steady-state phase (open[0]). The phase replays a compact
  // hot working set (steady traffic concentrates on hot OD pairs) — the
  // scenario the canary warm is built for: the shadow model re-serves the
  // shards' recent-OD rings before going live, so the swap does not turn
  // the hot set into a cold-cache stampede.
  std::vector<OdtInput> hot_demand(
      demand.begin(),
      demand.begin() + std::min<size_t>(64, demand.size()));
  std::vector<int64_t> versions_before;
  for (const ShardStatus& s : router.Statuses()) {
    versions_before.push_back(s.model_version);
  }
  double swap_ms = 0;
  Status swap_status = Status::OK();
  std::thread swapper([&router, &swap_ms, &swap_status, phase_s] {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(phase_s / 3.0));
    double t0 = NowMs();
    swap_status = router.SwapAll();
    swap_ms = NowMs() - t0;
  });
  PhaseResult swap_phase = RunOpenLoop(server.port(), hot_demand,
                                       0.5 * capacity, /*conns=*/threads,
                                       phase_s, &server, seed++);
  swapper.join();
  swap_phase.name = "swap";
  PrintPhase(swap_phase);
  std::vector<int64_t> versions_after;
  for (const ShardStatus& s : router.Statuses()) {
    versions_after.push_back(s.model_version);
  }

  server.Shutdown();
  ServerStats stats = server.stats();
  BatcherStats bstats = server.batcher_stats();

  std::ostringstream os;
  os.precision(6);
  os << "{\n  \"bench\": \"serving_load\", \"scale\": \""
     << (full ? "full" : "quick") << "\",\n"
     << "  \"capacity_qps\": " << capacity << ",\n"
     << "  \"shards\": " << router.shard_count() << ",\n  \"phases\": [\n"
     << PhaseJson(closed);
  for (const PhaseResult& r : open) os << ",\n" << PhaseJson(r);
  os << ",\n" << PhaseJson(swap_phase);
  double steady_p99 = open.front().latency_ms.p99;
  double swap_p99_vs_steady =
      steady_p99 > 0 ? swap_phase.latency_ms.p99 / steady_p99 : 0;
  os << "\n  ],\n"
     << "  \"swap\": {\"ok\": " << (swap_status.ok() ? "true" : "false")
     << ", \"swap_ms\": " << swap_ms << ", \"versions_before\": [";
  for (size_t i = 0; i < versions_before.size(); ++i) {
    os << (i ? ", " : "") << versions_before[i];
  }
  os << "], \"versions_after\": [";
  for (size_t i = 0; i < versions_after.size(); ++i) {
    os << (i ? ", " : "") << versions_after[i];
  }
  os << "], \"errors\": " << swap_phase.errors
     << ", \"p99_vs_steady\": " << swap_p99_vs_steady << "},\n"
     << "  \"server\": {\"connections\": " << stats.connections_accepted
     << ", \"requests\": " << stats.requests
     << ", \"responses\": " << stats.responses
     << ", \"overload_rejected\": " << stats.overload_rejected
     << ", \"protocol_errors\": " << stats.protocol_errors << "},\n"
     << "  \"batcher\": {\"submitted\": " << bstats.submitted
     << ", \"completed\": " << bstats.completed
     << ", \"waves\": " << bstats.waves
     << ", \"rejected_full\": " << bstats.rejected_full
     << ", \"rejected_stale\": " << bstats.rejected_stale << "}\n}\n";

  const char* path_env = std::getenv("DOT_BENCH_SERVING_LOAD_JSON");
  std::string path =
      (path_env && path_env[0]) ? path_env : "BENCH_serving.json";
  std::ofstream out(path);
  out << os.str();
  out.close();
  std::printf("wrote %s\n", path.c_str());

  // Sanity checks that make a silent regression loud in bench logs: batch
  // formation must actually happen under load, and the overload point must
  // be answered by typed rejections and/or degradation, not by timeouts.
  const PhaseResult& overload = open.back();
  bool formed_waves = overload.mean_wave() > 1.0;
  bool shed_or_degraded =
      overload.rejected > 0 ||
      overload.quality[1] + overload.quality[2] + overload.quality[3] > 0;
  if (!formed_waves) std::printf("WARN: no batch formation under load\n");
  if (!shed_or_degraded) std::printf("WARN: overload produced no shedding\n");
  // Hot-swap acceptance: the swap must have completed, bumped every shard's
  // model version, served zero errors, and kept tail latency bounded.
  bool all_bumped = versions_before.size() == versions_after.size();
  for (size_t i = 0; all_bumped && i < versions_after.size(); ++i) {
    all_bumped = versions_after[i] > versions_before[i];
  }
  if (!swap_status.ok()) {
    std::printf("WARN: hot swap failed: %s\n",
                swap_status.ToString().c_str());
  }
  if (!all_bumped) std::printf("WARN: swap did not bump every shard\n");
  if (swap_phase.errors > 0) {
    std::printf("WARN: swap phase served %lld errors\n",
                static_cast<long long>(swap_phase.errors));
  }
  if (swap_p99_vs_steady > 2.0) {
    std::printf("WARN: swap phase p99 %.1fms is %.2fx steady state\n",
                swap_phase.latency_ms.p99, swap_p99_vs_steady);
  }
  ::unlink(ckpt.c_str());
  std::printf("SERVING_BENCH_DONE\n");
  return 0;
}

}  // namespace
}  // namespace serve
}  // namespace dot

int main(int argc, char** argv) {
  int port = 0;
  int queries = 25;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--client-smoke") {
      smoke = true;
    } else if (arg == "--port" && i + 1 < argc) {
      port = std::atoi(argv[++i]);
    } else if (arg == "--queries" && i + 1 < argc) {
      queries = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_serving_load [--client-smoke --port N "
                   "[--queries K]]\n");
      return 2;
    }
  }
  if (smoke) {
    if (port <= 0) {
      std::fprintf(stderr, "--client-smoke requires --port\n");
      return 2;
    }
    return dot::serve::RunClientSmoke(port, queries);
  }
  return dot::serve::RunLoadBench();
}
