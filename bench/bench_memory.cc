// Memory/allocation benchmark for the pooled tensor storage engine.
//
// Measures the reverse-diffusion sampling loop (the oracle's serving-path
// hot loop) in three regimes:
//   1. cold pool  — every allocation misses and touches the heap; the miss
//      count is the per-pass allocation count of the whole UNet stack;
//   2. steady state — after one warmup pass the free lists serve everything;
//      the acceptance gate is zero misses and zero net live-byte growth;
//   3. pool disabled (DOT_TENSOR_POOL=off behaviour) — the eager-heap
//      baseline the steady-state latency is compared against.
//
// Output: human-readable summary on stdout and a JSON dump to
// DOT_BENCH_MEMORY_JSON (default BENCH_memory.json; run_benches.sh exports
// it).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "core/diffusion.h"
#include "core/unet.h"
#include "tensor/storage.h"
#include "tensor/tensor.h"

namespace dot {
namespace {

constexpr int64_t kSteps = 24;        // reverse steps per sampling pass
constexpr int kSteadyPasses = 5;      // timed steady-state passes

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace
}  // namespace dot

int main() {
  using namespace dot;

  UnetConfig cfg;
  cfg.base_channels = 8;
  cfg.levels = 2;
  cfg.cond_dim = 16;
  cfg.max_steps = kSteps;
  Rng rng(17);
  UnetDenoiser unet(cfg, &rng);
  Diffusion diff{DiffusionSchedule(kSteps)};
  Tensor cond = Tensor::Zeros({1, 5});
  const std::vector<int64_t> out_shape = {1, 3, 8, 8};
  auto run_pass = [&](uint64_t seed) {
    Rng pass_rng(seed);
    Tensor x = diff.Sample(unet, cond, out_shape, &pass_rng);
    return x.data()[0];  // keep the result observable
  };

  // 1. Cold pool: the miss count is the allocation count of one full pass.
  storage::SetPoolEnabled(true);
  storage::TrimPool();
  storage::ResetPoolStats();
  run_pass(1);
  storage::PoolStats cold = storage::GetPoolStats();

  // 2. Steady state (the pool is now warm from the cold pass).
  storage::ResetPoolStats();
  int64_t live0 = storage::GetPoolStats().bytes_live;
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kSteadyPasses; ++i) run_pass(2);
  double steady_s = Seconds(t0);
  storage::PoolStats steady = storage::GetPoolStats();
  int64_t live_growth = storage::GetPoolStats().bytes_live - live0;

  // 3. Pool disabled: eager heap allocation baseline.
  storage::SetPoolEnabled(false);
  storage::TrimPool();
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kSteadyPasses; ++i) run_pass(2);
  double unpooled_s = Seconds(t0);
  storage::SetPoolEnabled(true);

  double steady_step_us = steady_s * 1e6 / (kSteadyPasses * kSteps);
  double unpooled_step_us = unpooled_s * 1e6 / (kSteadyPasses * kSteps);

  std::printf("reverse-diffusion memory bench (%ld steps/pass)\n",
              static_cast<long>(kSteps));
  std::printf("  cold pass:    %ld pool allocations (misses), high water %.2f MiB\n",
              static_cast<long>(cold.misses),
              static_cast<double>(cold.high_water_bytes) / (1024.0 * 1024.0));
  std::printf("  steady state: %ld misses, %ld hits over %d passes, "
              "net live growth %ld bytes\n",
              static_cast<long>(steady.misses), static_cast<long>(steady.hits),
              kSteadyPasses, static_cast<long>(live_growth));
  std::printf("  step latency: %.1f us pooled vs %.1f us unpooled (%.2fx)\n",
              steady_step_us, unpooled_step_us,
              steady_step_us > 0 ? unpooled_step_us / steady_step_us : 0.0);
  if (steady.misses != 0 || live_growth != 0) {
    std::printf("REGRESSION: steady-state sampling is not allocator-quiet\n");
  }

  char json[1024];
  std::snprintf(
      json, sizeof(json),
      "{\n"
      "  \"steps_per_pass\": %ld,\n"
      "  \"steady_passes\": %d,\n"
      "  \"cold_pass_allocations\": %ld,\n"
      "  \"high_water_bytes\": %ld,\n"
      "  \"steady_state_misses\": %ld,\n"
      "  \"steady_state_hits\": %ld,\n"
      "  \"steady_state_live_growth_bytes\": %ld,\n"
      "  \"steady_step_latency_us\": %.2f,\n"
      "  \"unpooled_step_latency_us\": %.2f\n"
      "}\n",
      static_cast<long>(kSteps), kSteadyPasses, static_cast<long>(cold.misses),
      static_cast<long>(cold.high_water_bytes),
      static_cast<long>(steady.misses), static_cast<long>(steady.hits),
      static_cast<long>(live_growth), steady_step_us, unpooled_step_us);

  const char* path = std::getenv("DOT_BENCH_MEMORY_JSON");
  std::string out_path = (path && path[0]) ? path : "BENCH_memory.json";
  std::ofstream out(out_path);
  out << json;
  std::printf("wrote %s\n", out_path.c_str());
  return (steady.misses == 0 && live_growth == 0) ? 0 : 1;
}
