// Shared infrastructure for the table/figure reproduction benches: dataset
// construction, scaled configurations, model caching, and evaluation
// helpers. Every bench binary prints the paper's rows for its table/figure.
//
// Scale is controlled by the DOT_BENCH_SCALE environment variable:
//   quick (default) — minutes-per-bench CPU budgets: smaller trip counts,
//                     fewer training epochs, capped query counts.
//   full            — larger datasets and budgets; closer to the paper's
//                     setup (still CPU-sized; see EXPERIMENTS.md).

#ifndef DOT_BENCH_COMMON_H_
#define DOT_BENCH_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/oracle.h"
#include "core/dot_oracle.h"
#include "eval/dataset.h"
#include "eval/metrics.h"
#include "sim/city.h"
#include "util/table.h"

namespace dot::bench {

/// \brief Resolved bench scale parameters.
struct Scale {
  std::string name = "quick";
  int64_t chengdu_trips = 1250;
  int64_t harbin_trips = 1000;
  int64_t city_nodes = 13;        ///< per-axis intersections of both cities
  int64_t test_queries = 80;     ///< evaluation cap per dataset
  int64_t stage1_epochs = 6;
  int64_t stage2_epochs = 8;
  int64_t baseline_epochs = 40;   ///< small neural baselines
  int64_t rnn_epochs = 10;        ///< DeepOD / path-TTE recurrent models
  bool both_datasets = false;     ///< ablation benches: Harbin too?
};

/// Reads DOT_BENCH_SCALE and returns the resolved scale.
Scale GetScale();

/// Scaled DOT configuration (architecture follows the paper's optimal
/// Table-2 values, scaled down per DESIGN.md).
DotConfig ScaledDotConfig(const Scale& scale);

/// \brief A city + dataset pair used by the benches.
struct BenchDataset {
  std::string name;
  std::unique_ptr<City> city;
  BenchmarkDataset data;
};

/// Builds the Chengdu-like or Harbin-like dataset at the given scale.
BenchDataset MakeChengdu(const Scale& scale);
BenchDataset MakeHarbin(const Scale& scale);

/// Trains a DOT oracle on `split`, or loads it from the on-disk cache under
/// $DOT_BENCH_CACHE (default ./bench_cache). `tag` names the dataset and
/// variant; the cache key covers tag, scale, training size and config knobs.
std::unique_ptr<DotOracle> TrainDotCached(const DotConfig& config,
                                          const Grid& grid,
                                          const DatasetSplit& split,
                                          const std::string& tag,
                                          const Scale& scale);

/// Evaluates an ODT oracle on (at most `cap`) test samples.
RegressionMetrics EvalOracle(const OdtOracle& oracle,
                             const std::vector<TripSample>& test, int64_t cap);

/// Evaluates predictions already computed for the first test samples.
RegressionMetrics EvalPredictions(const std::vector<double>& preds,
                                  const std::vector<TripSample>& test);

/// Test-sample predictions of a DOT oracle (infers PiTs then estimates).
std::vector<double> DotPredict(DotOracle* oracle,
                               const std::vector<TripSample>& test, int64_t cap);

/// Formats "rmse/mae/mape" cells like the paper's tables.
std::string MetricCell(const RegressionMetrics& m);

/// Builds the Table-3 set of baselines (Dijkstra, DeepST, WDDRA, STDGCN,
/// TEMP, LR, GBM, RNE, ST-NN, MURAT, DeepOD), trained on `train`/`val`.
std::vector<std::unique_ptr<OdtOracle>> TrainOdtBaselines(
    const City& city, const std::vector<TripSample>& train,
    const std::vector<TripSample>& val, const Grid& grid, const Scale& scale);

}  // namespace dot::bench

#endif  // DOT_BENCH_COMMON_H_
