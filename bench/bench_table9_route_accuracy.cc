// Reproduces Table 9: accuracy of route inference — precision/recall/F1 of
// the mask channels produced by Dijkstra, DeepST and DOT against the
// ground-truth routes.
//
// Paper shape to check: DOT's inferred routes clearly beat both routing
// baselines; DeepST beats Dijkstra.

#include "baselines/routers.h"
#include "common.h"

using namespace dot;
using namespace dot::bench;

namespace {

Pit RoutePit(const std::vector<int64_t>& cells, int64_t grid_size) {
  Pit pit(grid_size);
  for (int64_t c : cells) {
    pit.Set(kPitMask, c / grid_size, c % grid_size, 1.0f);
  }
  return pit;
}

}  // namespace

int main() {
  Scale scale = GetScale();
  Table table("Table 9: route inference accuracy, Pre/Rec/F1 (%) (scale=" +
              scale.name + ")");
  table.SetHeader({"Method", "Chengdu", "Harbin"});

  std::vector<std::string> names = {"Dijkstra", "DeepST", "DOT (Ours)"};
  std::vector<std::vector<std::string>> cells(names.size());

  for (auto* make : {&MakeChengdu, &MakeHarbin}) {
    BenchDataset ds = (*make)(scale);
    DotConfig cfg = ScaledDotConfig(scale);
    Grid grid = ds.data.MakeGrid(cfg.grid_size).ValueOrDie();
    const auto& split = ds.data.split;
    int64_t n = std::min<int64_t>(scale.test_queries,
                                  static_cast<int64_t>(split.test.size()));

    DijkstraRouter dijkstra(&ds.city->network(), grid);
    DOT_CHECK(dijkstra.Train(split.train).ok());
    DeepStRouter deepst(grid);
    DOT_CHECK(deepst.Train(split.train).ok());
    auto oracle = TrainDotCached(cfg, grid, split, ds.name, scale);

    std::vector<OdtInput> odts;
    for (int64_t i = 0; i < n; ++i) odts.push_back(split.test[i].odt);
    std::vector<Pit> inferred = oracle->InferPits(odts);

    std::vector<RouteAccuracy> acc_dij, acc_dst, acc_dot;
    for (int64_t i = 0; i < n; ++i) {
      const auto& s = split.test[static_cast<size_t>(i)];
      Pit truth = oracle->GroundTruthPit(s.trajectory);
      acc_dij.push_back(
          CompareRoutes(RoutePit(dijkstra.Route(s.odt), cfg.grid_size), truth));
      acc_dst.push_back(
          CompareRoutes(RoutePit(deepst.Route(s.odt), cfg.grid_size), truth));
      acc_dot.push_back(CompareRoutes(inferred[static_cast<size_t>(i)], truth));
    }
    auto cell = [](const RouteAccuracy& a) {
      return Table::Num(100 * a.precision, 2) + "/" + Table::Num(100 * a.recall, 2) +
             "/" + Table::Num(100 * a.f1, 2);
    };
    cells[0].push_back(cell(MeanRouteAccuracy(acc_dij)));
    cells[1].push_back(cell(MeanRouteAccuracy(acc_dst)));
    cells[2].push_back(cell(MeanRouteAccuracy(acc_dot)));
  }

  for (size_t i = 0; i < names.size(); ++i) {
    std::vector<std::string> row{names[i]};
    row.insert(row.end(), cells[i].begin(), cells[i].end());
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
