// Google-benchmark microbenchmarks for the tensor kernels and the MViT /
// ViT estimators. These quantify the building blocks behind Table 5 and
// Figure 8; the table/figure reproductions live in the bench_table* /
// bench_fig* binaries.

#include <benchmark/benchmark.h>

#include "core/estimator.h"
#include "core/unet.h"
#include "tensor/nn.h"
#include "tensor/ops.h"
#include "tensor/ops_internal.h"

namespace dot {
namespace {

void BM_Gemm(benchmark::State& state) {
  int64_t m = state.range(0), k = state.range(1), n = state.range(2);
  std::vector<float> a(static_cast<size_t>(m * k), 0.5f);
  std::vector<float> b(static_cast<size_t>(k * n), 0.25f);
  std::vector<float> c(static_cast<size_t>(m * n));
  for (auto _ : state) {
    internal::Gemm(a.data(), b.data(), c.data(), m, k, n, false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
}
BENCHMARK(BM_Gemm)->Args({16, 144, 4096})->Args({64, 576, 256});

void BM_Conv2dForward(benchmark::State& state) {
  NoGradGuard guard;
  Rng rng(1);
  int64_t l = state.range(0);
  Tensor x = Tensor::Randn({8, 16, l, l}, &rng);
  Tensor w = Tensor::Randn({16, 16, 3, 3}, &rng);
  for (auto _ : state) {
    Tensor y = Conv2d(x, w, Tensor(), 1, 1);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv2dForward)->Arg(16)->Arg(24);

void BM_Conv2dForwardBatched(benchmark::State& state) {
  // Per-sample amortization of the batched im2col + one-GEMM lowering:
  // compare items_per_second across B at a fixed spatial size.
  NoGradGuard guard;
  Rng rng(5);
  int64_t b = state.range(0), l = state.range(1);
  Tensor x = Tensor::Randn({b, 16, l, l}, &rng);
  Tensor w = Tensor::Randn({16, 16, 3, 3}, &rng);
  for (auto _ : state) {
    Tensor y = Conv2d(x, w, Tensor(), 1, 1);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * b);
}
// arg0: batch size; arg1: L_G.
BENCHMARK(BM_Conv2dForwardBatched)
    ->Args({1, 16})
    ->Args({4, 16})
    ->Args({16, 16});

void BM_UnetForward(benchmark::State& state) {
  NoGradGuard guard;
  Rng rng(2);
  UnetConfig cfg;
  cfg.base_channels = 16;
  cfg.levels = 2;
  cfg.cond_dim = 64;
  cfg.max_steps = 200;
  UnetDenoiser unet(cfg, &rng);
  int64_t b = state.range(0);
  Tensor x = Tensor::Randn({b, 3, 16, 16}, &rng);
  Tensor cond = Tensor::Randn({b, 5}, &rng);
  std::vector<int64_t> steps(static_cast<size_t>(b), 10);
  for (auto _ : state) {
    Tensor y = unet.PredictNoise(x, steps, cond);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_UnetForward)->Arg(1)->Arg(8);

Pit SparsePit(int64_t grid, int64_t visited) {
  Pit pit(grid);
  for (int64_t i = 0; i < std::min(grid, visited); ++i) {
    pit.Set(kPitMask, i, i, 1.0f);
    pit.Set(kPitTimeOfDay, i, i, 0.1f);
    pit.Set(kPitTimeOffset, i, i, 0.0f);
  }
  return pit;
}

void BM_EstimatorForward(benchmark::State& state) {
  NoGradGuard guard;
  Rng rng(3);
  bool masked = state.range(0) == 1;
  int64_t grid = state.range(1);
  EstimatorConfig cfg;
  cfg.grid_size = grid;
  cfg.embed_dim = 64;
  cfg.layers = 2;
  TransformerEstimator est(cfg, masked, &rng);
  std::vector<Pit> batch(8, SparsePit(grid, grid));
  for (auto _ : state) {
    Tensor y = est.ForwardBatch(batch, {});
    benchmark::DoNotOptimize(y.data());
  }
}
// arg0: 1 = MViT (masked), 0 = vanilla ViT; arg1: L_G.
BENCHMARK(BM_EstimatorForward)
    ->Args({1, 16})
    ->Args({0, 16})
    ->Args({1, 24})
    ->Args({0, 24});

void BM_MultiheadAttention(benchmark::State& state) {
  NoGradGuard guard;
  Rng rng(4);
  int64_t tokens = state.range(0);
  nn::MultiheadAttention att(64, 4, &rng);
  Tensor x = Tensor::Randn({1, tokens, 64}, &rng);
  for (auto _ : state) {
    Tensor y = att.Forward(x);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_MultiheadAttention)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace dot

BENCHMARK_MAIN();
