// Reproduces Table 3: overall travel-time estimation performance of all
// methods on both datasets (RMSE / MAE / MAPE).
//
// Paper shape to check: DOT best on both datasets; DeepOD second on most
// metrics; neural ODT methods beat traditional ones; DeepST beats Dijkstra;
// LR and TEMP worst among learned/history methods.

#include "common.h"

using namespace dot;
using namespace dot::bench;

int main() {
  Scale scale = GetScale();
  Table table("Table 3: overall performance, RMSE/MAE/MAPE (scale=" + scale.name +
              ")");
  table.SetHeader({"Method", "Chengdu", "Harbin"});

  std::vector<std::string> names;
  std::vector<std::vector<std::string>> cells;

  bool first = true;
  for (auto* make : {&MakeChengdu, &MakeHarbin}) {
    BenchDataset ds = (*make)(scale);
    DotConfig cfg = ScaledDotConfig(scale);
    Grid grid = ds.data.MakeGrid(cfg.grid_size).ValueOrDie();

    auto baselines = TrainOdtBaselines(*ds.city, ds.data.split.train,
                                      ds.data.split.val, grid, scale);
    size_t row = 0;
    for (const auto& oracle : baselines) {
      RegressionMetrics m =
          EvalOracle(*oracle, ds.data.split.test, scale.test_queries);
      if (first) {
        names.push_back(oracle->name());
        cells.emplace_back();
      }
      cells[row++].push_back(MetricCell(m));
    }

    auto dot_oracle =
        TrainDotCached(cfg, grid, ds.data.split, ds.name, scale);
    std::vector<double> preds =
        DotPredict(dot_oracle.get(), ds.data.split.test, scale.test_queries);
    RegressionMetrics m = EvalPredictions(preds, ds.data.split.test);
    if (first) {
      names.push_back("DOT (Ours)");
      cells.emplace_back();
    }
    cells[row].push_back(MetricCell(m));
    first = false;
  }

  for (size_t i = 0; i < names.size(); ++i) {
    std::vector<std::string> row{names[i]};
    row.insert(row.end(), cells[i].begin(), cells[i].end());
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
