// Reproduces Table 1: dataset statistics after preprocessing (Sec. 6.1).
//
// Paper reference values —
//   Chengdu: 1,389,138 trips, 13.73 min, 3,283 m, 29.06 s, 15.32*15.19 km^2
//   Harbin:    614,830 trips, 15.69 min, 3,376 m, 44.42 s, 18.66*18.24 km^2
// Our datasets are CPU-scaled (thousands of trips); the per-trip statistics
// and city extents should land in the same range.

#include "common.h"

using namespace dot;
using namespace dot::bench;

int main() {
  Scale scale = GetScale();
  Table table("Table 1: dataset statistics (scale=" + scale.name + ")");
  table.SetHeader({"Dataset", "Trajectories", "Mean time (min)", "Mean dist (m)",
                   "Mean interval (s)", "Area (km^2)"});

  for (auto* make : {&MakeChengdu, &MakeHarbin}) {
    BenchDataset ds = (*make)(scale);
    std::vector<TripSample> all = ds.data.split.train;
    all.insert(all.end(), ds.data.split.val.begin(), ds.data.split.val.end());
    all.insert(all.end(), ds.data.split.test.begin(), ds.data.split.test.end());
    DatasetStats stats = ComputeStats(TrajectoriesOf(all));
    table.AddRow({ds.name, std::to_string(stats.num_trajectories),
                  Table::Num(stats.mean_travel_time_minutes, 2),
                  Table::Num(stats.mean_travel_distance_meters, 0),
                  Table::Num(stats.mean_sample_interval_seconds, 2),
                  Table::Num(stats.area_width_km, 2) + "*" +
                      Table::Num(stats.area_height_km, 2)});
  }
  table.Print();
  return 0;
}
