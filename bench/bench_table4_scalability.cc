// Reproduces Table 4: scalability — MAPE on Chengdu when training on
// {20, 40, 60, 80, 100}% of the training set.
//
// Paper shape to check: every method improves with more data; DOT is best
// at every scale; DOT at the smallest scale is competitive with the
// runner-up at full scale.

#include "common.h"

using namespace dot;
using namespace dot::bench;

int main() {
  Scale scale = GetScale();
  // Quick mode thins the sweep; full mode runs the paper's five scales.
  std::vector<double> fractions = scale.name == "full"
                                      ? std::vector<double>{0.2, 0.4, 0.6, 0.8, 1.0}
                                      : std::vector<double>{0.2, 1.0};

  Table table("Table 4: scalability on Chengdu, MAPE(%) vs training fraction "
              "(scale=" + scale.name + ")");
  std::vector<std::string> header{"Method"};
  for (double f : fractions) header.push_back(Table::Num(100 * f, 0) + "%");
  table.SetHeader(header);

  BenchDataset ds = MakeChengdu(scale);
  DotConfig cfg = ScaledDotConfig(scale);
  Grid grid = ds.data.MakeGrid(cfg.grid_size).ValueOrDie();

  std::vector<std::string> names;
  std::vector<std::vector<std::string>> cells;
  bool first = true;
  for (double frac : fractions) {
    DatasetSplit sub = ds.data.split;
    sub.train.resize(static_cast<size_t>(
        static_cast<double>(ds.data.split.train.size()) * frac));

    auto baselines =
        TrainOdtBaselines(*ds.city, sub.train, sub.val, grid, scale);
    size_t row = 0;
    for (const auto& oracle : baselines) {
      RegressionMetrics m = EvalOracle(*oracle, sub.test, scale.test_queries);
      if (first) {
        names.push_back(oracle->name());
        cells.emplace_back();
      }
      cells[row++].push_back(Table::Num(m.mape, 3));
    }

    auto dot_oracle = TrainDotCached(cfg, grid, sub, ds.name, scale);
    std::vector<double> preds =
        DotPredict(dot_oracle.get(), sub.test, scale.test_queries);
    RegressionMetrics m = EvalPredictions(preds, sub.test);
    if (first) {
      names.push_back("DOT (Ours)");
      cells.emplace_back();
    }
    cells[row].push_back(Table::Num(m.mape, 3));
    first = false;
  }

  for (size_t i = 0; i < names.size(); ++i) {
    std::vector<std::string> row{names[i]};
    row.insert(row.end(), cells[i].begin(), cells[i].end());
    table.AddRow(row);
  }
  table.Print();
  return 0;
}
