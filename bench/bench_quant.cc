// Int8 quantized GEMM + end-to-end oracle accuracy benchmark with gates
// (DESIGN.md §5j).
//
// Section 1 — throughput: fp32 vs int8 for the blocked and simd engines
// over serving-relevant shapes, single thread. The acceptance gate reads
// the 256x256x256 row: the dispatched int8 path must reach >= 1.5x the
// blocked-fp32 engine (the AVX2-class baseline it replaces). The int8
// numbers include per-call quantization + packing of BOTH operands — the
// serving path amortizes the weight side through the quantized-weight
// cache, so these are worst-case (pure dynamic) figures.
//
// Section 2 — accuracy: the demo-world oracle queried under fp32 and int8
// from the same checkpoint (two freshly-loaded replicas => identical noise
// streams; see tests/quant_accuracy_test.cc). Gate: |MAE_int8 - MAE_fp32|
// must stay under kMaeGateMinutes.
//
// Output: a table on stdout and a JSON dump to DOT_BENCH_QUANT_JSON
// (default BENCH_quant.json; run_benches.sh exports it). Exits non-zero
// when a gate fails, so CI and run_benches.sh surface the regression.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/dot_oracle.h"
#include "serve/demo.h"
#include "tensor/gemm_kernel.h"
#include "util/rng.h"

namespace dot {
namespace {

constexpr double kPerfGate = 1.5;        // int8 vs fp32-blocked at 256^3
constexpr double kMaeGateMinutes = 0.25;  // same bound as quant_accuracy_test

struct Shape {
  int64_t m, k, n;
  const char* note;
};

const Shape kShapes[] = {
    {256, 256, 256, "acceptance gate (>=1.5x int8 vs fp32 blocked)"},
    {64, 576, 256, "im2col conv, mid"},
    {64, 64, 64, "attention-scale"},
    {1024, 64, 8, "tall-skinny FC"},
};

double TimeEx(gemm::Kernel kernel, gemm::Precision precision, const Shape& s,
              const std::vector<float>& a, const std::vector<float>& b,
              std::vector<float>* c) {
  using Clock = std::chrono::steady_clock;
  const double flops = 2.0 * static_cast<double>(s.m) *
                       static_cast<double>(s.k) * static_cast<double>(s.n);
  gemm::RunEx(kernel, precision, gemm::Layout::kNN, a.data(), b.data(),
              c->data(), s.m, s.k, s.n, false);
  double best_ns = 1e30;
  double spent_ns = 0;
  int reps = 0;
  while ((spent_ns < 3e8 || reps < 3) && reps < 2000) {
    auto t0 = Clock::now();
    gemm::RunEx(kernel, precision, gemm::Layout::kNN, a.data(), b.data(),
                c->data(), s.m, s.k, s.n, false);
    double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
            .count());
    best_ns = ns < best_ns ? ns : best_ns;
    spent_ns += ns;
    ++reps;
  }
  return flops / best_ns;  // effective GFLOP/s (fp32-equivalent op count)
}

}  // namespace
}  // namespace dot

int main() {
  using namespace dot;
  setenv("DOT_NUM_THREADS", "1", /*overwrite=*/1);

  const bool simd = gemm::SimdAvailable();
  std::printf("Int8 quantized GEMM path, single thread (simd %s)\n",
              simd ? "available" : "UNAVAILABLE -> blocked/scalar");
  std::printf("%-14s %14s %14s %14s %14s %9s  %s\n", "shape", "fp32 blk GF/s",
              "fp32 simd GF/s", "int8 blk GF/s", "int8 simd GF/s", "gate",
              "note");

  std::string json = "{\n  \"simd_available\": ";
  json += simd ? "true" : "false";
  json += ",\n  \"threads\": 1,\n  \"perf_gate\": ";
  char num[64];
  std::snprintf(num, sizeof(num), "%.2f", kPerfGate);
  json += num;
  json += ",\n  \"shapes\": [\n";

  bool perf_gate_ok = true;
  double gate_speedup = 0;
  bool first_row = true;
  for (const Shape& s : kShapes) {
    Rng rng(42);
    std::vector<float> a(static_cast<size_t>(s.m * s.k));
    std::vector<float> b(static_cast<size_t>(s.k * s.n));
    std::vector<float> c(static_cast<size_t>(s.m * s.n));
    for (auto& x : a) x = static_cast<float>(rng.Normal());
    for (auto& x : b) x = static_cast<float>(rng.Normal());

    double fp32_blk = TimeEx(gemm::Kernel::kBlocked, gemm::Precision::kFp32,
                             s, a, b, &c);
    double fp32_simd = TimeEx(gemm::Kernel::kSimd, gemm::Precision::kFp32, s,
                              a, b, &c);
    double int8_blk = TimeEx(gemm::Kernel::kBlocked, gemm::Precision::kInt8,
                             s, a, b, &c);
    double int8_simd = TimeEx(gemm::Kernel::kSimd, gemm::Precision::kInt8, s,
                              a, b, &c);
    // The dispatched int8 path (simd micro when available) vs the
    // AVX2-class fp32 baseline it substitutes for.
    double speedup = fp32_blk > 0 ? int8_simd / fp32_blk : 0;
    if (s.m == 256 && s.k == 256 && s.n == 256) {
      gate_speedup = speedup;
      // Without the AVX2 micro the int8 path runs a scalar pair loop and
      // the perf gate is not meaningful — record, don't enforce.
      if (simd && speedup < kPerfGate) perf_gate_ok = false;
    }
    char shape_buf[32];
    std::snprintf(shape_buf, sizeof(shape_buf), "%ldx%ldx%ld",
                  static_cast<long>(s.m), static_cast<long>(s.k),
                  static_cast<long>(s.n));
    std::printf("%-14s %14.2f %14.2f %14.2f %14.2f %8.2fx  %s\n", shape_buf,
                fp32_blk, fp32_simd, int8_blk, int8_simd, speedup, s.note);

    char row[512];
    std::snprintf(row, sizeof(row),
                  "    {\"m\": %ld, \"k\": %ld, \"n\": %ld, "
                  "\"fp32_blocked_gflops\": %.3f, \"fp32_simd_gflops\": %.3f, "
                  "\"int8_blocked_gflops\": %.3f, \"int8_simd_gflops\": %.3f, "
                  "\"speedup_int8_vs_fp32_blocked\": %.3f}",
                  static_cast<long>(s.m), static_cast<long>(s.k),
                  static_cast<long>(s.n), fp32_blk, fp32_simd, int8_blk,
                  int8_simd, speedup);
    if (!first_row) json += ",\n";
    json += row;
    first_row = false;
  }
  json += "\n  ],\n";

  // ---- End-to-end oracle accuracy gate --------------------------------------
  std::printf("\ndemo-world oracle accuracy (fp32 vs int8, same checkpoint)\n");
  std::string ckpt = "/tmp/dot_bench_quant.ckpt";
  Result<serve::DemoWorld> world = serve::BuildDemoWorld(ckpt);
  if (!world.ok()) {
    std::fprintf(stderr, "demo world failed: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  std::vector<OdtInput> odts;
  std::vector<double> truth;
  const auto& test = world->dataset->split.test;
  for (size_t i = 0; i < 32 && i < test.size(); ++i) {
    odts.push_back(test[i].odt);
    truth.push_back(test[i].travel_time_minutes);
  }

  // Two freshly-loaded replicas: identical weights AND identical sampler
  // noise streams, so the precisions are the only difference.
  auto load_replica = [&]() -> std::unique_ptr<DotOracle> {
    auto oracle =
        std::make_unique<DotOracle>(serve::DemoDotConfig(), *world->grid);
    Status s = oracle->LoadFile(ckpt);
    if (!s.ok()) {
      std::fprintf(stderr, "replica load failed: %s\n", s.ToString().c_str());
      return nullptr;
    }
    return oracle;
  };

  double mae[2] = {0, 0};  // [fp32, int8]
  double max_rel = 0;
  for (int pi = 0; pi < 2; ++pi) {
    gemm::SetPrecision(pi == 0 ? gemm::Precision::kFp32
                               : gemm::Precision::kInt8);
    std::unique_ptr<DotOracle> oracle = load_replica();
    if (oracle == nullptr) return 1;
    Result<std::vector<DotEstimate>> r = oracle->EstimateBatch(odts);
    if (!r.ok()) {
      std::fprintf(stderr, "EstimateBatch failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
    static std::vector<double> fp32_minutes;
    for (size_t i = 0; i < odts.size(); ++i) {
      double m = (*r)[i].minutes;
      mae[pi] += std::fabs(m - truth[i]);
      if (pi == 0) {
        fp32_minutes.push_back(m);
      } else {
        double rel = std::fabs(m - fp32_minutes[i]) /
                     std::fmax(1.0, std::fabs(fp32_minutes[i]));
        max_rel = std::fmax(max_rel, rel);
      }
    }
    mae[pi] /= static_cast<double>(odts.size());
  }
  gemm::SetPrecision(gemm::Precision::kFp32);

  const double mae_delta = std::fabs(mae[1] - mae[0]);
  const bool mae_gate_ok = mae_delta <= kMaeGateMinutes;
  std::printf("  queries=%zu mae_fp32=%.4f mae_int8=%.4f delta=%.6f "
              "(gate %.2f) max_rel=%.4f\n",
              odts.size(), mae[0], mae[1], mae_delta, kMaeGateMinutes,
              max_rel);

  char acc[512];
  std::snprintf(acc, sizeof(acc),
                "  \"oracle\": {\"queries\": %zu, \"mae_fp32\": %.5f, "
                "\"mae_int8\": %.5f, \"mae_delta\": %.6f, "
                "\"mae_gate\": %.3f, \"max_rel_vs_fp32\": %.5f},\n"
                "  \"gate_speedup_int8_vs_fp32_blocked\": %.3f,\n"
                "  \"perf_gate_ok\": %s,\n  \"mae_gate_ok\": %s\n}\n",
                odts.size(), mae[0], mae[1], mae_delta, kMaeGateMinutes,
                max_rel, gate_speedup, perf_gate_ok ? "true" : "false",
                mae_gate_ok ? "true" : "false");
  json += acc;

  const char* path = std::getenv("DOT_BENCH_QUANT_JSON");
  std::string out_path = (path && path[0]) ? path : "BENCH_quant.json";
  std::ofstream out(out_path);
  out << json;
  std::printf("wrote %s\n", out_path.c_str());

  if (!mae_gate_ok) {
    std::fprintf(stderr, "FAIL: oracle MAE delta %.6f exceeds gate %.3f\n",
                 mae_delta, kMaeGateMinutes);
    return 1;
  }
  if (!perf_gate_ok) {
    std::fprintf(stderr,
                 "FAIL: int8 speedup %.3fx at 256^3 under gate %.2fx\n",
                 gate_speedup, kPerfGate);
    return 1;
  }
  return 0;
}
