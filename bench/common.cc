#include "common.h"

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "baselines/deepod.h"
#include "baselines/embedding.h"
#include "baselines/path_tte.h"
#include "baselines/regression.h"
#include "baselines/routers.h"
#include "baselines/temp.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dot::bench {

Scale GetScale() {
  Scale s;
  const char* env = std::getenv("DOT_BENCH_SCALE");
  if (env != nullptr && std::string(env) == "full") {
    s.name = "full";
    s.chengdu_trips = 6000;
    s.harbin_trips = 4000;
    s.city_nodes = 18;
    s.test_queries = 400;
    s.stage1_epochs = 16;
    s.stage2_epochs = 14;
    s.baseline_epochs = 60;
    s.rnn_epochs = 18;
    s.both_datasets = true;
  }
  return s;
}

DotConfig ScaledDotConfig(const Scale& scale) {
  DotConfig cfg;
  // Architecture follows the paper's optimal hyper-parameters (Table 2)
  // scaled to CPU budgets: L_G 20 -> 16, N 1000 -> 200 (with 15-step strided
  // DDIM sampling), L_D 3 -> 2, d_E 128 -> 64, L_E = 2 as in the paper.
  cfg.grid_size = 16;
  cfg.diffusion_steps = 200;
  cfg.sample_steps = 12;
  cfg.unet.base_channels = 12;
  cfg.val_samples = 40;
  cfg.unet.levels = 2;
  cfg.unet.cond_dim = 64;
  cfg.estimator.embed_dim = 64;
  cfg.estimator.layers = 2;
  cfg.batch_size = 16;
  cfg.stage1_epochs = scale.stage1_epochs;
  cfg.stage2_epochs = scale.stage2_epochs;
  cfg.val_samples = 48;
  return cfg;
}

namespace {

BenchDataset MakeCity(const Scale& scale, bool chengdu) {
  BenchDataset ds;
  CityConfig cc = chengdu ? CityConfig::ChengduLike() : CityConfig::HarbinLike();
  // Keep the paper's city extents but scale the intersection density with
  // the bench budget.
  cc.spacing_meters = cc.spacing_meters * static_cast<double>(cc.grid_nodes) /
                      static_cast<double>(scale.city_nodes);
  cc.grid_nodes = scale.city_nodes;
  ds.name = cc.name;
  ds.city = std::make_unique<City>(cc, chengdu ? 101 : 202);
  TripConfig tc = chengdu ? TripConfig::ChengduLike() : TripConfig::HarbinLike();
  tc.num_trips = chengdu ? scale.chengdu_trips : scale.harbin_trips;
  ds.data = BuildDataset(*ds.city, tc, chengdu ? 111 : 222, ds.name);
  return ds;
}

std::string CacheDir() {
  const char* env = std::getenv("DOT_BENCH_CACHE");
  std::string dir = env != nullptr ? env : "bench_cache";
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  return dir;
}

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string ConfigKey(const DotConfig& c, const std::string& tag,
                      const std::string& dataset, const Scale& scale) {
  std::ostringstream os;
  os << tag << "|" << dataset << "|" << scale.name << "|" << c.grid_size << "|"
     << c.diffusion_steps << "|" << c.sample_steps << "|" << c.unet.base_channels
     << "|" << c.unet.levels << "|" << c.unet.cond_dim << "|"
     << c.estimator.embed_dim << "|" << c.estimator.layers << "|"
     << static_cast<int>(c.estimator_kind) << "|" << c.estimator.use_cell_embedding
     << c.estimator.use_latent_cast << c.use_time_condition << c.use_od_condition
     << "|" << c.stage1_epochs << "|" << c.stage2_epochs << "|" << c.seed;
  return os.str();
}

}  // namespace

BenchDataset MakeChengdu(const Scale& scale) { return MakeCity(scale, true); }
BenchDataset MakeHarbin(const Scale& scale) { return MakeCity(scale, false); }

std::unique_ptr<DotOracle> TrainDotCached(const DotConfig& config,
                                          const Grid& grid,
                                          const DatasetSplit& split,
                                          const std::string& tag,
                                          const Scale& scale) {
  auto oracle = std::make_unique<DotOracle>(config, grid);
  std::string key = ConfigKey(config, tag, std::to_string(split.train.size()),
                              scale);
  std::string path = CacheDir() + "/dot_" + std::to_string(Fnv1a(key)) + ".bin";
  if (std::filesystem::exists(path) && oracle->LoadFile(path).ok()) {
    DOT_LOG_INFO << "loaded cached DOT oracle (" << tag << ")";
    return oracle;
  }
  Stopwatch sw;
  DOT_CHECK(oracle->TrainStage1(split.train).ok());
  DOT_CHECK(oracle->TrainStage2(split.train, split.val).ok());
  DOT_LOG_INFO << "trained DOT (" << tag << ") in "
               << Table::Num(sw.ElapsedSeconds(), 1) << "s";
  Status s = oracle->SaveFile(path);
  if (!s.ok()) DOT_LOG_WARN << "oracle cache write failed: " << s.ToString();
  return oracle;
}

RegressionMetrics EvalOracle(const OdtOracle& oracle,
                             const std::vector<TripSample>& test, int64_t cap) {
  MetricsAccumulator acc;
  int64_t n = std::min<int64_t>(cap, static_cast<int64_t>(test.size()));
  for (int64_t i = 0; i < n; ++i) {
    const auto& s = test[static_cast<size_t>(i)];
    acc.Add(oracle.EstimateMinutes(s.odt), s.travel_time_minutes);
  }
  return acc.Finalize();
}

RegressionMetrics EvalPredictions(const std::vector<double>& preds,
                                  const std::vector<TripSample>& test) {
  MetricsAccumulator acc;
  for (size_t i = 0; i < preds.size() && i < test.size(); ++i) {
    acc.Add(preds[i], test[i].travel_time_minutes);
  }
  return acc.Finalize();
}

std::vector<double> DotPredict(DotOracle* oracle,
                               const std::vector<TripSample>& test, int64_t cap) {
  int64_t n = std::min<int64_t>(cap, static_cast<int64_t>(test.size()));
  std::vector<OdtInput> odts;
  odts.reserve(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) odts.push_back(test[static_cast<size_t>(i)].odt);
  std::vector<Pit> pits = oracle->InferPits(odts);
  return oracle->EstimateFromPits(pits, odts);
}

std::string MetricCell(const RegressionMetrics& m) {
  return Table::Num(m.rmse, 3) + "/" + Table::Num(m.mae, 3) + "/" +
         Table::Num(m.mape, 2);
}

namespace {

/// Adapts a Router to the OdtOracle interface (Table 3 rows 1-2).
class RouterOracle : public OdtOracle {
 public:
  explicit RouterOracle(std::unique_ptr<Router> router)
      : router_(std::move(router)) {}

  Status Train(const std::vector<TripSample>& train,
               const std::vector<TripSample>&) override {
    return router_->Train(train);
  }
  double EstimateMinutes(const OdtInput& odt) const override {
    return router_->EstimateMinutes(odt);
  }
  std::string name() const override { return router_->name(); }
  int64_t SizeBytes() const override { return router_->SizeBytes(); }

  Router* router() { return router_.get(); }

 private:
  std::unique_ptr<Router> router_;
};

/// Path-based TTE fed with a router's generated path (Table 3 rows 3-4).
class RoutedPathOracle : public OdtOracle {
 public:
  RoutedPathOracle(std::unique_ptr<PathEstimator> estimator, Router* router)
      : estimator_(std::move(estimator)), router_(router) {}

  Status Train(const std::vector<TripSample>& train,
               const std::vector<TripSample>& val) override {
    return estimator_->Train(train, val);
  }
  double EstimateMinutes(const OdtInput& odt) const override {
    return estimator_->EstimateMinutes(router_->Route(odt), odt);
  }
  std::string name() const override { return estimator_->name(); }
  int64_t SizeBytes() const override {
    return estimator_->SizeBytes() + router_->SizeBytes();
  }

 private:
  std::unique_ptr<PathEstimator> estimator_;
  Router* router_;  // not owned (shared with its RouterOracle)
};

}  // namespace

std::vector<std::unique_ptr<OdtOracle>> TrainOdtBaselines(
    const City& city, const std::vector<TripSample>& train,
    const std::vector<TripSample>& val, const Grid& grid, const Scale& scale) {
  std::vector<std::unique_ptr<OdtOracle>> oracles;

  auto dijkstra = std::make_unique<RouterOracle>(
      std::make_unique<DijkstraRouter>(&city.network(), grid));
  auto deepst_router = std::make_unique<DeepStRouter>(grid);
  DOT_CHECK(deepst_router->Train(train).ok());
  DeepStRouter* deepst_ptr = deepst_router.get();
  auto deepst = std::make_unique<RouterOracle>(std::move(deepst_router));
  DOT_CHECK(dijkstra->Train(train, val).ok());

  PathTteConfig ptc;
  ptc.epochs = scale.rnn_epochs;
  auto wddra = std::make_unique<RoutedPathOracle>(
      std::make_unique<RecurrentPathEstimator>(grid, /*deep=*/false, ptc),
      deepst_ptr);
  DOT_CHECK(wddra->Train(train, val).ok());
  PathTteConfig stc = ptc;
  stc.epochs = std::max<int64_t>(2, scale.rnn_epochs / 2);  // per-candidate
  auto stdgcn = std::make_unique<RoutedPathOracle>(
      SearchStdgcn(grid, train, val, stc), deepst_ptr);
  // SearchStdgcn already trained the winner; no second Train call.

  auto temp = std::make_unique<TempOracle>();
  DOT_CHECK(temp->Train(train, val).ok());
  auto lr = std::make_unique<LinearRegressionOracle>(grid);
  DOT_CHECK(lr->Train(train, val).ok());
  auto gbm = std::make_unique<GbmOracle>(grid);
  DOT_CHECK(gbm->Train(train, val).ok());

  NeuralBaselineConfig nbc;
  nbc.epochs = scale.baseline_epochs;
  auto rne = std::make_unique<RneOracle>(grid, nbc);
  DOT_CHECK(rne->Train(train, val).ok());
  auto stnn = std::make_unique<StnnOracle>(grid, nbc);
  DOT_CHECK(stnn->Train(train, val).ok());
  auto murat = std::make_unique<MuratOracle>(grid, nbc);
  DOT_CHECK(murat->Train(train, val).ok());
  DeepOdConfig doc;
  doc.epochs = scale.rnn_epochs;
  auto deepod = std::make_unique<DeepOdOracle>(grid, doc);
  DOT_CHECK(deepod->Train(train, val).ok());

  oracles.push_back(std::move(dijkstra));
  oracles.push_back(std::move(deepst));
  oracles.push_back(std::move(wddra));
  oracles.push_back(std::move(stdgcn));
  oracles.push_back(std::move(temp));
  oracles.push_back(std::move(lr));
  oracles.push_back(std::move(gbm));
  oracles.push_back(std::move(rne));
  oracles.push_back(std::move(stnn));
  oracles.push_back(std::move(murat));
  oracles.push_back(std::move(deepod));
  return oracles;
}

}  // namespace dot::bench
