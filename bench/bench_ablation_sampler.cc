// Design ablation (DESIGN.md §5): strided DDIM fast sampling vs the paper's
// full ancestral reverse process (Algorithm 1). All variants share the
// cached base model (stage 1 weights AND the stage-2 estimator) — only the
// sampler changes, so differences are attributable to sampling alone.
//
// Expected shape: quality saturates well below the full step count — the
// justification for the fast default — while latency grows linearly.
//
// Output: a table on stdout and a per-variant JSON dump (MAE / RMSE /
// latency per DDIM step count) to DOT_BENCH_SAMPLER_JSON (default
// BENCH_sampler.json; run_benches.sh exports it).

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common.h"

#include "util/stopwatch.h"

using namespace dot;
using namespace dot::bench;

int main() {
  Scale scale = GetScale();
  BenchDataset ds = MakeChengdu(scale);
  DotConfig cfg = ScaledDotConfig(scale);
  Grid grid = ds.data.MakeGrid(cfg.grid_size).ValueOrDie();
  const auto& split = ds.data.split;

  auto base = TrainDotCached(cfg, grid, split, ds.name, scale);

  int64_t n = std::min<int64_t>(scale.test_queries / 2,
                                static_cast<int64_t>(split.test.size()));
  std::vector<OdtInput> odts;
  std::vector<Pit> truths;
  for (int64_t i = 0; i < n; ++i) {
    odts.push_back(split.test[i].odt);
    truths.push_back(base->GroundTruthPit(split.test[i].trajectory));
  }

  Table table("Sampler ablation: strided DDIM vs ancestral DDPM (scale=" +
              scale.name + ")");
  table.SetHeader({"Sampler", "Route F1", "PiT MAE", "TTE MAE (min)",
                   "Latency (s/query)"});

  struct Variant {
    std::string name;
    int64_t steps;
    bool ancestral;
  };
  std::vector<Variant> variants = {{"DDIM-5", 5, false},
                                   {"DDIM-12", 12, false},
                                   {"DDIM-25", 25, false}};
  if (scale.name == "full") {
    variants.push_back({"ancestral (Alg. 1)", cfg.diffusion_steps, true});
  }

  std::string json = "{\n  \"scale\": \"" + scale.name + "\",\n  \"queries\": " +
                     std::to_string(n) + ",\n  \"variants\": [\n";
  bool first_row = true;
  for (const auto& v : variants) {
    DotConfig vcfg = cfg;
    vcfg.sample_steps = v.steps;
    vcfg.ancestral_sampling = v.ancestral;
    // Share the trained stage 1; the estimator stays the base one (only the
    // sampler differs), so no stage-2 retraining.
    DotOracle sampler_oracle(vcfg, grid);
    DOT_CHECK(sampler_oracle.AdoptStage1(*base).ok());
    Stopwatch sw;
    std::vector<Pit> pits = sampler_oracle.InferPits(odts);
    double latency = sw.ElapsedSeconds() / static_cast<double>(n);
    std::vector<RouteAccuracy> accs;
    std::vector<PitError> errs;
    for (int64_t i = 0; i < n; ++i) {
      accs.push_back(CompareRoutes(pits[static_cast<size_t>(i)],
                                   truths[static_cast<size_t>(i)]));
      errs.push_back(
          ComparePits(pits[static_cast<size_t>(i)], truths[static_cast<size_t>(i)]));
    }
    RegressionMetrics m =
        EvalPredictions(base->EstimateFromPits(pits, odts), split.test);
    table.AddRow({v.name, Table::Num(MeanRouteAccuracy(accs).f1, 3),
                  Table::Num(MeanPitError(errs).overall_mae, 3),
                  Table::Num(m.mae, 3), Table::Num(latency, 3)});
    char row[320];
    std::snprintf(row, sizeof(row),
                  "    {\"sampler\": \"%s\", \"steps\": %lld, "
                  "\"ancestral\": %s, \"route_f1\": %.4f, \"pit_mae\": %.4f, "
                  "\"tte_mae_min\": %.4f, \"tte_rmse_min\": %.4f, "
                  "\"latency_s_per_query\": %.5f}",
                  v.name.c_str(), static_cast<long long>(v.steps),
                  v.ancestral ? "true" : "false", MeanRouteAccuracy(accs).f1,
                  MeanPitError(errs).overall_mae, m.mae, m.rmse, latency);
    if (!first_row) json += ",\n";
    json += row;
    first_row = false;
  }
  json += "\n  ]\n}\n";
  table.Print();

  const char* path = std::getenv("DOT_BENCH_SAMPLER_JSON");
  std::string out_path = (path && path[0]) ? path : "BENCH_sampler.json";
  std::ofstream out(out_path);
  out << json;
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
