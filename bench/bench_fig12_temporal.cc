// Reproduces Figure 12: evolution of the average travel time between the
// top-3 most frequently traveled cell pairs across the day (two-hour bins),
// comparing ground-truth trajectories with DOT's inferred PiTs.
//
// Paper shape to check: the inferred curves track the ground-truth curves —
// higher travel times in the rush-hour bins — showing the temporal channels
// of inferred PiTs carry real traffic dynamics.

#include <map>

#include "common.h"

using namespace dot;
using namespace dot::bench;

namespace {

/// Seconds between two cells of a PiT implied by its temporal channels and
/// the trip duration; returns a negative value when either cell is missing.
double PitSecondsBetween(const Pit& pit, int64_t a, int64_t b,
                         double trip_minutes) {
  int64_t l = pit.grid_size();
  if (!pit.Visited(a / l, a % l) || !pit.Visited(b / l, b % l)) return -1;
  double offset_a = pit.At(kPitTimeOffset, a / l, a % l);
  double offset_b = pit.At(kPitTimeOffset, b / l, b % l);
  // Offsets span [-1, 1] over the trip duration.
  return (offset_b - offset_a) / 2.0 * trip_minutes * 60.0;
}

}  // namespace

int main() {
  Scale scale = GetScale();
  BenchDataset ds = MakeChengdu(scale);
  DotConfig cfg = ScaledDotConfig(scale);
  Grid grid = ds.data.MakeGrid(cfg.grid_size).ValueOrDie();
  auto oracle = TrainDotCached(cfg, grid, ds.data.split, ds.name, scale);

  // Top-3 most frequent ordered cell pairs (consecutive cells of training
  // trips, as Definition 2 orders them).
  std::map<std::pair<int64_t, int64_t>, int64_t> counts;
  for (const auto& s : ds.data.split.train) {
    Pit pit = oracle->GroundTruthPit(s.trajectory);
    std::vector<int64_t> seq = PitToCellSequence(pit);
    for (size_t i = 1; i < seq.size(); ++i) counts[{seq[i - 1], seq[i]}]++;
  }
  std::vector<std::pair<int64_t, std::pair<int64_t, int64_t>>> ranked;
  for (auto& [pair, count] : counts) ranked.push_back({count, pair});
  std::sort(ranked.rbegin(), ranked.rend());
  size_t top = std::min<size_t>(3, ranked.size());

  // Evaluate: for each test trip traversing a top pair, record the truth
  // and inferred between-cell seconds into 2-hour bins.
  int64_t n = std::min<int64_t>(scale.test_queries * 2,
                                static_cast<int64_t>(ds.data.split.test.size()));
  std::vector<OdtInput> odts;
  for (int64_t i = 0; i < n; ++i) odts.push_back(ds.data.split.test[i].odt);
  std::vector<Pit> inferred = oracle->InferPits(odts);
  std::vector<double> est_minutes = oracle->EstimateFromPits(inferred, odts);

  for (size_t k = 0; k < top; ++k) {
    auto [a, b] = ranked[k].second;
    int64_t l = grid.grid_size();
    Table table("Figure 12 pair " + std::to_string(k + 1) + ": cells (" +
                std::to_string(a / l) + "," + std::to_string(a % l) + ") -> (" +
                std::to_string(b / l) + "," + std::to_string(b % l) + ")");
    table.SetHeader({"2h bin", "truth avg (s)", "inferred avg (s)", "#truth",
                     "#inferred"});
    double truth_sum[12] = {0}, truth_n[12] = {0};
    double inf_sum[12] = {0}, inf_n[12] = {0};
    for (int64_t i = 0; i < n; ++i) {
      const auto& s = ds.data.split.test[static_cast<size_t>(i)];
      int64_t bin = SecondsOfDay(s.odt.departure_time) / 7200;
      Pit truth = oracle->GroundTruthPit(s.trajectory);
      double tsec = PitSecondsBetween(truth, a, b, s.travel_time_minutes);
      if (tsec > 0) {
        truth_sum[bin] += tsec;
        truth_n[bin] += 1;
      }
      double isec = PitSecondsBetween(inferred[static_cast<size_t>(i)], a, b,
                                      est_minutes[static_cast<size_t>(i)]);
      if (isec > 0) {
        inf_sum[bin] += isec;
        inf_n[bin] += 1;
      }
    }
    for (int64_t bin = 0; bin < 12; ++bin) {
      if (truth_n[bin] == 0 && inf_n[bin] == 0) continue;
      table.AddRow(
          {std::to_string(2 * bin) + "-" + std::to_string(2 * bin + 2) + "h",
           truth_n[bin] > 0 ? Table::Num(truth_sum[bin] / truth_n[bin], 1) : "-",
           inf_n[bin] > 0 ? Table::Num(inf_sum[bin] / inf_n[bin], 1) : "-",
           Table::Num(truth_n[bin], 0), Table::Num(inf_n[bin], 0)});
    }
    table.Print();
  }
  return 0;
}
